package solver

import (
	"math/rand"
	"testing"

	"symmerge/internal/expr"
)

func newTestSolver() *Solver { return New(DefaultOptions()) }

func TestTrivial(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	ok, m, err := s.CheckSat(nil)
	if err != nil || !ok {
		t.Fatalf("empty conjunction: ok=%v err=%v", ok, err)
	}
	if len(m) != 0 {
		t.Fatalf("empty conjunction model: %v", m)
	}
	ok, _, err = s.CheckSat([]*expr.Expr{b.False()})
	if err != nil || ok {
		t.Fatalf("false: ok=%v err=%v", ok, err)
	}
}

func TestSimpleConstraints(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	// x + 1 == 5  =>  x == 4
	ok, m, err := s.CheckSat([]*expr.Expr{b.Eq(b.Add(x, b.Const(1, 8)), b.Const(5, 8))})
	if err != nil || !ok {
		t.Fatalf("sat check: ok=%v err=%v", ok, err)
	}
	if m[x] != 4 {
		t.Fatalf("model x=%d, want 4", m[x])
	}
	// x < 3 ∧ x > 5 is unsat.
	ok, _, _ = s.CheckSat([]*expr.Expr{
		b.Ult(x, b.Const(3, 8)),
		b.Ugt(x, b.Const(5, 8)),
	})
	if ok {
		t.Fatal("x<3 ∧ x>5 reported sat")
	}
}

func TestMultiplicationInverse(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	// x * 3 == 33  =>  x == 11 (3 is odd, invertible mod 256; 11 unique
	// within small range but mod-256 has a single solution since 3 is
	// invertible).
	ok, m, err := s.CheckSat([]*expr.Expr{b.Eq(b.Mul(x, b.Const(3, 8)), b.Const(33, 8))})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got := (m[x] * 3) & 0xff; got != 33 {
		t.Fatalf("model x=%d does not satisfy x*3=33 (got %d)", m[x], got)
	}
}

func TestSignedComparison(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	// x <s 0 ∧ x >u 200: negative byte values are > 200 unsigned for
	// x in 201..255, and signed-negative for 128..255: sat.
	ok, m, err := s.CheckSat([]*expr.Expr{
		b.Slt(x, b.Const(0, 8)),
		b.Ugt(x, b.Const(200, 8)),
	})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m[x] <= 200 || m[x] > 255 {
		t.Fatalf("model x=%d out of expected range", m[x])
	}
}

func TestDivisionSemantics(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	// x udiv 0 == 255 for every x (SMT-LIB): the negation must be unsat.
	q := b.Not(b.Eq(b.UDiv(x, b.Const(0, 8)), b.Const(255, 8)))
	ok, _, err := s.CheckSat([]*expr.Expr{q})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("found x with x/0 != 255")
	}
	// x urem 0 == x for every x.
	q = b.Not(b.Eq(b.URem(x, b.Const(0, 8)), x))
	ok, _, _ = s.CheckSat([]*expr.Expr{q})
	if ok {
		t.Fatal("found x with x%0 != x")
	}
}

// TestBlastAgainstEval is the central solver property test: for random
// boolean expressions e and random seed assignments, asserting e ∧ (vars =
// seed values) must be sat exactly when Eval says e is true under the seed.
func TestBlastAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	b := expr.NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	vars := []*expr.Expr{x, y}
	for iter := 0; iter < 400; iter++ {
		e := randomBoolExpr(b, rng, vars, 4)
		xv := uint64(rng.Intn(16))
		yv := uint64(rng.Intn(16))
		want := expr.EvalBool(e, expr.Env{x: xv, y: yv})
		s := New(Options{}) // no caches: test the blaster directly
		ok, _, err := s.CheckSat([]*expr.Expr{
			e,
			b.Eq(x, b.Const(xv, 4)),
			b.Eq(y, b.Const(yv, 4)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("iter %d: blast/eval disagree on %s with x=%d y=%d: sat=%v eval=%v",
				iter, e, xv, yv, ok, want)
		}
	}
}

// TestModelValidity: every model returned for sat queries must satisfy the
// constraints under the reference evaluator.
func TestModelValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	b := expr.NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	vars := []*expr.Expr{x, y}
	sat, unsat := 0, 0
	for iter := 0; iter < 400; iter++ {
		e := randomBoolExpr(b, rng, vars, 5)
		s := New(Options{})
		ok, m, err := s.CheckSat([]*expr.Expr{e})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			unsat++
			// Cross-check with brute force over 4-bit x, y.
			for xv := uint64(0); xv < 16; xv++ {
				for yv := uint64(0); yv < 16; yv++ {
					if expr.EvalBool(e, expr.Env{x: xv, y: yv}) {
						t.Fatalf("iter %d: unsat but x=%d y=%d satisfies %s", iter, xv, yv, e)
					}
				}
			}
			continue
		}
		sat++
		if !expr.EvalBool(e, expr.Env(m)) {
			t.Fatalf("iter %d: model %v does not satisfy %s", iter, m, e)
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("degenerate test distribution: sat=%d unsat=%d", sat, unsat)
	}
}

func TestShiftSemantics(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	sh := b.Var("sh", 8)
	// For shift ≥ width, shl yields 0: assert exists x,sh: sh >= 8 ∧ (x
	// << sh) != 0 must be unsat.
	ok, _, err := s.CheckSat([]*expr.Expr{
		b.Uge(sh, b.Const(8, 8)),
		b.Ne(b.Shl(x, sh), b.Const(0, 8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("x << (sh≥8) != 0 is satisfiable")
	}
	// ashr of a negative value by ≥ width is all ones.
	ok, _, _ = s.CheckSat([]*expr.Expr{
		b.Slt(x, b.Const(0, 8)),
		b.Uge(sh, b.Const(8, 8)),
		b.Ne(b.AShr(x, sh), b.Const(0xff, 8)),
	})
	if ok {
		t.Fatal("negative >> (sh≥8) != -1 is satisfiable")
	}
}

func TestIteBlast(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	c := b.Var("c", 0)
	x := b.Ite(c, b.Const(10, 8), b.Const(20, 8))
	ok, m, err := s.CheckSat([]*expr.Expr{b.Eq(x, b.Const(20, 8))})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m[c] != 0 {
		t.Fatalf("model c=%d, want 0", m[c])
	}
}

func TestIndependenceSlicing(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	z := b.Var("z", 8)
	cs := []*expr.Expr{
		b.Ult(x, b.Const(5, 8)), // group {x}
		b.Eq(y, b.Const(7, 8)),  // group {y,z} via the next one
		b.Eq(z, y),              //
		b.Ugt(x, b.Const(1, 8)), // group {x}
	}
	groups := independentGroups(cs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	sizes := []int{len(groups[0]), len(groups[1])}
	if !(sizes[0] == 2 && sizes[1] == 2) {
		t.Fatalf("group sizes %v, want [2 2]", sizes)
	}
	s := newTestSolver()
	ok, m, err := s.CheckSat(cs)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m[y] != 7 || m[z] != 7 || m[x] < 2 || m[x] > 4 {
		t.Fatalf("model %v violates constraints", m)
	}
	if s.Stats.IndepSliced == 0 {
		t.Fatal("independence slicing did not trigger")
	}
}

func TestCexCache(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	q := []*expr.Expr{b.Ult(x, b.Const(5, 8))}
	if ok, _, _ := s.CheckSat(q); !ok {
		t.Fatal("first query unsat")
	}
	calls := s.Stats.SATCalls
	// Identical query again: cache or model reuse must answer it.
	if ok, _, _ := s.CheckSat(q); !ok {
		t.Fatal("second query unsat")
	}
	if s.Stats.SATCalls != calls {
		t.Fatalf("repeat query reached SAT: %d -> %d calls", calls, s.Stats.SATCalls)
	}
	if s.Stats.CacheHits+s.Stats.ModelReuseHits == 0 {
		t.Fatal("no cache/model-reuse hit recorded")
	}
}

func TestModelReuse(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{EnableModelReuse: true})
	x := b.Var("x", 8)
	if ok, m, _ := s.CheckSat([]*expr.Expr{b.Eq(x, b.Const(9, 8))}); !ok || m[x] != 9 {
		t.Fatalf("setup query failed: %v", m)
	}
	calls := s.Stats.SATCalls
	// A weaker query satisfied by the remembered model {x:9}.
	ok, m, _ := s.CheckSat([]*expr.Expr{b.Ugt(x, b.Const(3, 8))})
	if !ok || m[x] != 9 {
		t.Fatalf("reuse query: ok=%v m=%v", ok, m)
	}
	if s.Stats.SATCalls != calls {
		t.Fatal("model reuse did not avoid a SAT call")
	}
}

func TestMustMayQueries(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	pc := []*expr.Expr{b.Ult(x, b.Const(10, 8))}
	cond := b.Ult(x, b.Const(20, 8))
	may, err := s.MayBeTrue(pc, cond)
	if err != nil || !may {
		t.Fatalf("x<10 ⊢ may(x<20): %v %v", may, err)
	}
	must, err := s.MustBeTrue(pc, b.Not(cond))
	if err != nil || !must {
		t.Fatalf("x<10 ⊢ must(x<20): %v %v", must, err)
	}
	cond2 := b.Ult(x, b.Const(5, 8))
	must, _ = s.MustBeTrue(pc, b.Not(cond2))
	if must {
		t.Fatal("x<10 ⊬ must(x<5)")
	}
}

func TestGetModel(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	m, err := s.GetModel([]*expr.Expr{b.Eq(x, b.Const(42, 8))})
	if err != nil || m == nil || m[x] != 42 {
		t.Fatalf("m=%v err=%v", m, err)
	}
	m, err = s.GetModel([]*expr.Expr{b.False()})
	if err != nil || m != nil {
		t.Fatalf("unsat model: m=%v err=%v", m, err)
	}
}

func TestWideWidths(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 32)
	// x * 2 == 10 has solutions 5 and 5+2^31.
	ok, m, err := s.CheckSat([]*expr.Expr{
		b.Eq(b.Mul(x, b.Const(2, 32)), b.Const(10, 32)),
		b.Ult(x, b.Const(100, 32)),
	})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m[x] != 5 {
		t.Fatalf("x=%d, want 5", m[x])
	}
}

func TestConcatExtractRoundTrip(t *testing.T) {
	b := expr.NewBuilder()
	s := newTestSolver()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	cc := b.Concat(x, y)
	ok, m, err := s.CheckSat([]*expr.Expr{
		b.Eq(cc, b.Const(0xab12, 16)),
	})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m[x] != 0xab || m[y] != 0x12 {
		t.Fatalf("x=%#x y=%#x", m[x], m[y])
	}
}

// randomBoolExpr builds a random boolean expression over 4-bit variables.
func randomBoolExpr(b *expr.Builder, rng *rand.Rand, vars []*expr.Expr, depth int) *expr.Expr {
	mkBV := func(d int) *expr.Expr {
		var f func(d int) *expr.Expr
		f = func(d int) *expr.Expr {
			if d == 0 || rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 && len(vars) > 0 {
					return vars[rng.Intn(len(vars))]
				}
				return b.Const(uint64(rng.Intn(16)), 4)
			}
			l, r := f(d-1), f(d-1)
			switch rng.Intn(10) {
			case 0:
				return b.Add(l, r)
			case 1:
				return b.Sub(l, r)
			case 2:
				return b.Mul(l, r)
			case 3:
				return b.BAnd(l, r)
			case 4:
				return b.BOr(l, r)
			case 5:
				return b.BXor(l, r)
			case 6:
				return b.UDiv(l, r)
			case 7:
				return b.URem(l, r)
			case 8:
				return b.Shl(l, r)
			default:
				return b.LShr(l, r)
			}
		}
		return f(d)
	}
	var f func(d int) *expr.Expr
	f = func(d int) *expr.Expr {
		if d == 0 {
			return b.Bool(rng.Intn(2) == 0)
		}
		switch rng.Intn(8) {
		case 0:
			return b.Eq(mkBV(d-1), mkBV(d-1))
		case 1:
			return b.Ult(mkBV(d-1), mkBV(d-1))
		case 2:
			return b.Slt(mkBV(d-1), mkBV(d-1))
		case 3:
			return b.Sle(mkBV(d-1), mkBV(d-1))
		case 4:
			return b.And(f(d-1), f(d-1))
		case 5:
			return b.Or(f(d-1), f(d-1))
		case 6:
			return b.Not(f(d - 1))
		default:
			return b.Ite(f(d-1), f(d-1), f(d-1))
		}
	}
	return f(depth)
}

func TestEqualitySubstitution(t *testing.T) {
	b := expr.NewBuilder()
	s := New(DefaultOptions())
	s.AttachBuilder(b)
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	// x = 5 pins x; y > x becomes y > 5 before blasting.
	ok, m, err := s.CheckSat([]*expr.Expr{
		b.Eq(x, b.Const(5, 8)),
		b.Ugt(y, x),
	})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// The model must still report the substituted variable.
	if m[x] != 5 {
		t.Fatalf("model x=%d, want 5 (binding folded back)", m[x])
	}
	if m[y] <= 5 {
		t.Fatalf("model y=%d violates y > 5", m[y])
	}
	// Contradictory pins must be unsat.
	ok, _, _ = s.CheckSat([]*expr.Expr{
		b.Eq(x, b.Const(5, 8)),
		b.Eq(x, b.Const(6, 8)),
	})
	if ok {
		t.Fatal("x=5 ∧ x=6 reported sat")
	}
	// Boolean pin via bare conjunct.
	c := b.Var("c", 0)
	ok, m, _ = s.CheckSat([]*expr.Expr{c, b.Ite(c, b.Eq(y, b.Const(1, 8)), b.False())})
	if !ok || m[c] != 1 || m[y] != 1 {
		t.Fatalf("bool pin: ok=%v m=%v", ok, m)
	}
}
