package analysis

import (
	"symmerge/internal/cfg"
	"symmerge/internal/ir"
)

// Liveness computes per-location may-liveness of locals: live[pc][v] is
// true when v's value at pc may still be read before being overwritten.
// This is the analysis QCE uses to mask Qadd (a dead variable cannot
// influence any future query through its current value) and the one the
// engine's merge consults to skip building ite selectors for dead slots.
//
// Scalars are killed at full definitions as before. Arrays are normally
// only killed by OpMakeSymArr (stores are partial defs), with one
// sharpening over the historic QCE-private analysis: when a canonical
// counted loop provably overwrites an entire array — init 0, step 1,
// bound = len, a single unconditional `arr[i] = v` store, and no other
// use of arr inside the loop — the array is additionally dead in the
// straight-line prefix leading into the loop. Only those pre-loop points
// are cleared: inside the loop the partially-written array is live (its
// low elements survive to the post-loop reads), so a per-instruction kill
// there would be unsound.
func Liveness(fn *ir.Func, g *cfg.FuncCFG) [][]bool {
	n := len(fn.Instrs)
	nl := len(fn.Locals)
	if n == 0 {
		out := make([][]bool, 1)
		out[0] = make([]bool, nl)
		return out
	}
	p := &liveProblem{fn: fn, nl: nl}
	p.buildUseDef()
	live := Solve[[]bool](g, p)
	killFullOverwrites(fn, g, p, live)
	return live
}

// liveProblem implements the backward liveness lattice over []bool facts.
type liveProblem struct {
	fn  *ir.Func
	nl  int
	use [][]int
	def []int // killed local per pc, -1 if none
}

func (p *liveProblem) Direction() Direction { return Backward }
func (p *liveProblem) Bottom() []bool       { return make([]bool, p.nl) }
func (p *liveProblem) Boundary() []bool     { return make([]bool, p.nl) }

func (p *liveProblem) Join(a, b []bool) []bool {
	out := make([]bool, p.nl)
	for i := range out {
		out[i] = a[i] || b[i]
	}
	return out
}

func (p *liveProblem) Equal(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *liveProblem) Transfer(pc int, out []bool) []bool {
	in := make([]bool, p.nl)
	copy(in, out)
	if d := p.def[pc]; d >= 0 {
		in[d] = false
	}
	for _, u := range p.use[pc] {
		in[u] = true
	}
	return in
}

// buildUseDef fills the per-instruction use/def tables (shared with the
// full-overwrite detection, which needs the use sets to prove an array
// untouched inside a loop).
func (p *liveProblem) buildUseDef() {
	fn := p.fn
	n := len(fn.Instrs)
	p.use = make([][]int, n)
	p.def = make([]int, n)
	addUse := func(pc int, o ir.Operand) {
		if !o.IsConst {
			p.use[pc] = append(p.use[pc], o.Local)
		}
	}
	for pc := 0; pc < n; pc++ {
		in := &fn.Instrs[pc]
		p.def[pc] = -1
		switch in.Op {
		case ir.OpBr, ir.OpNop:
		case ir.OpCondBr, ir.OpAssert, ir.OpAssume, ir.OpOut:
			addUse(pc, in.A)
		case ir.OpRet, ir.OpHalt:
			if in.HasVal {
				addUse(pc, in.A)
			}
		case ir.OpArgc, ir.OpStdinLen, ir.OpSymInt, ir.OpSymByte, ir.OpSymBool:
			p.def[pc] = in.Dst
		case ir.OpStdin:
			addUse(pc, in.A)
			p.def[pc] = in.Dst
		case ir.OpArgChar:
			addUse(pc, in.A)
			addUse(pc, in.B)
			p.def[pc] = in.Dst
		case ir.OpLoad:
			addUse(pc, in.A)
			addUse(pc, in.B)
			p.def[pc] = in.Dst
		case ir.OpStore:
			// Partial def: the array stays live; index and value read.
			p.use[pc] = append(p.use[pc], in.Dst)
			addUse(pc, in.A)
			addUse(pc, in.B)
		case ir.OpAlloc:
			addUse(pc, in.A)
			p.def[pc] = in.Dst
		case ir.OpPtrLoad:
			addUse(pc, in.A)
			p.def[pc] = in.Dst
		case ir.OpPtrStore:
			// Partial def of the pointed-to object (proxied by the
			// pointer local, which the address read keeps live anyway).
			addUse(pc, in.A)
			addUse(pc, in.B)
		case ir.OpCall:
			for _, a := range in.Args {
				addUse(pc, a)
			}
			if in.Dst >= 0 {
				p.def[pc] = in.Dst
			}
		case ir.OpMakeSymArr:
			// Overwrites the whole array: kill (and no use).
			if !in.A.IsConst {
				p.def[pc] = in.A.Local
			}
		case ir.OpMov, ir.OpNot, ir.OpNeg, ir.OpBNot,
			ir.OpIntToByte, ir.OpByteToInt, ir.OpBoolToInt:
			// Unary: B is not a real operand.
			addUse(pc, in.A)
			p.def[pc] = in.Dst
		default: // binary value ops
			addUse(pc, in.A)
			addUse(pc, in.B)
			p.def[pc] = in.Dst
		}
	}
}

// killFullOverwrites clears array liveness at the straight-line points
// leading into loops that provably overwrite the whole array before any
// other use. Proof obligations (all checked, conservative on any doubt):
//
//   - counted loop with init 0, step 1, `i < bound` exit — every index in
//     [0,bound) is visited exactly once;
//   - the loop body is the canonical two-block shape {header, body} whose
//     body's only successor is the header: no break-style early exits, and
//     every instruction in the body executes on every iteration;
//   - exactly one store to the array in the body, indexed by the induction
//     variable, placed before the increment (so it sees 0..bound-1);
//   - bound equals the array length, and nothing else in the loop reads or
//     passes the array.
//
// At any point that executes only before such a loop (the straight-line
// prefix up to the first other mention of the array), the array's current
// contents can never be read again — pre-loop merge keys and QCE hot sets
// may ignore it.
func killFullOverwrites(fn *ir.Func, g *cfg.FuncCFG, p *liveProblem, live [][]bool) {
	for _, l := range g.Loops {
		if l.TripCount == 0 || l.IVar < 0 || l.Init != 0 || l.Step != 1 || l.CmpOp != ir.OpLt {
			continue
		}
		if len(l.Body) != 2 {
			continue
		}
		bodyIdx := -1
		for bi := range l.Body {
			if bi != l.Header {
				bodyIdx = bi
			}
		}
		if bodyIdx < 0 {
			continue
		}
		body := g.Blocks[bodyIdx]
		if len(body.Succs) != 1 || body.Succs[0] != l.Header {
			continue
		}
		// Find the single increment of the induction variable in the body.
		incPC := -1
		for pc := body.Start; pc < body.End; pc++ {
			if fn.Instrs[pc].Dst == l.IVar {
				incPC = pc
			}
		}
		if incPC < 0 {
			continue
		}
		// Candidate arrays: full-length store at an eligible position and
		// no other use anywhere in the loop.
		hdr := g.Blocks[l.Header]
		for arr, loc := range fn.Locals {
			if !loc.Type.Array() || int64(loc.Type.Len) != l.Bound {
				continue
			}
			storePC := -1
			sound := true
			scan := func(b *cfg.Block) {
				for pc := b.Start; pc < b.End && sound; pc++ {
					in := &fn.Instrs[pc]
					if in.Op == ir.OpStore && in.Dst == arr {
						if storePC >= 0 || in.A.IsConst || in.A.Local != l.IVar {
							sound = false
							break
						}
						storePC = pc
						continue
					}
					for _, u := range p.use[pc] {
						if u == arr {
							sound = false
							break
						}
					}
					if p.def[pc] == arr {
						sound = false
					}
				}
			}
			scan(hdr)
			scan(body)
			if !sound || storePC < 0 || storePC > incPC || g.BlockOf[storePC] != bodyIdx {
				continue
			}
			// Clear the straight-line prefix before the header.
			for pc := hdr.Start - 1; pc >= 0; pc-- {
				in := &fn.Instrs[pc]
				if in.IsTerminator() || p.def[pc] == arr {
					break
				}
				touches := false
				for _, u := range p.use[pc] {
					if u == arr {
						touches = true
					}
				}
				if touches {
					break
				}
				live[pc][arr] = false
			}
		}
	}
}
