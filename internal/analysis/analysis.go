package analysis

import (
	"fmt"
	"strings"

	"symmerge/internal/cfg"
	"symmerge/internal/ir"
)

// Verdict is the static decision for a conditional branch.
type Verdict uint8

// Branch verdicts.
const (
	VUnknown Verdict = iota // both sides may be feasible
	VTrue                   // condition is statically always true
	VFalse                  // condition is statically always false
)

func (v Verdict) String() string {
	switch v {
	case VTrue:
		return "always"
	case VFalse:
		return "never"
	}
	return "?"
}

// FuncFacts bundles the per-instruction fact tables of one function. All
// tables are indexed by pc with one trailing slot for the function end; a
// nil Intervals/Origins row marks a statically-unreachable point.
type FuncFacts struct {
	Fn        *ir.Func
	G         *cfg.FuncCFG
	Intervals [][]Interval // value range of each local before pc
	Origins   [][]Origin   // pointer origin of each local before pc
	Branch    []Verdict    // OpCondBr static verdicts (VUnknown elsewhere)
	Live      [][]bool     // may-liveness of each local before pc
}

// Program is the full static-analysis result for one ir.Program: per-function
// interval/origin/liveness tables, branch verdicts, and heap-effect
// summaries. It is computed once per program, immutable afterwards, and safe
// to share across engines and workers; every table is a pure function of the
// program, so anything derived from it is stable across runs.
type Program struct {
	Prog     *ir.Program
	CG       *cfg.CallGraph
	Funcs    []*FuncFacts // parallel to Prog.Funcs
	Effects  []Effect     // parallel to Prog.Funcs
	SiteSize []int64      // allocation site -> constant cell count, -1 unknown
}

// Analyze runs all analyses over the program.
func Analyze(p *ir.Program) *Program {
	a := &Program{
		Prog:     p,
		CG:       cfg.BuildCallGraph(p),
		Funcs:    make([]*FuncFacts, len(p.Funcs)),
		SiteSize: siteSizes(p),
	}
	for i, fn := range p.Funcs {
		a.Funcs[i] = analyzeFunc(fn)
	}
	a.Effects = computeEffects(p, a.CG, a.Funcs, a.SiteSize)
	return a
}

func analyzeFunc(fn *ir.Func) *FuncFacts {
	g := cfg.Build(fn)
	ff := &FuncFacts{Fn: fn, G: g}
	facts := Solve[*ivFact](g, &intervalProblem{fn: fn, g: g})
	ff.Intervals = make([][]Interval, len(facts))
	ff.Origins = make([][]Origin, len(facts))
	for pc, f := range facts {
		if f != nil {
			ff.Intervals[pc] = f.iv
			ff.Origins[pc] = f.org
		}
	}
	ff.Branch = make([]Verdict, len(fn.Instrs))
	for pc := range fn.Instrs {
		in := &fn.Instrs[pc]
		if in.Op != ir.OpCondBr || in.Target == in.FTarget {
			continue
		}
		iv := ff.OperandInterval(pc, in.A)
		switch {
		case iv.Empty():
			// Unreachable branch: leave unknown (it never executes).
		case iv.Lo >= 1:
			ff.Branch[pc] = VTrue
		case iv.Hi <= 0:
			ff.Branch[pc] = VFalse
		}
	}
	ff.Live = Liveness(fn, g)
	return ff
}

// OperandInterval returns the static value range of an operand just before
// pc; unreachable points yield the empty interval.
func (ff *FuncFacts) OperandInterval(pc int, o ir.Operand) Interval {
	if o.IsConst {
		return Interval{o.Const, o.Const}
	}
	row := ff.Intervals[pc]
	if row == nil {
		return Interval{1, 0}
	}
	return row[o.Local]
}

// OperandOrigin returns the pointer origin of an operand just before pc.
func (ff *FuncFacts) OperandOrigin(pc int, o ir.Operand) Origin {
	if o.IsConst {
		return unknownOrigin
	}
	row := ff.Origins[pc]
	if row == nil {
		return unknownOrigin
	}
	return row[o.Local]
}

// IndexInBounds reports whether the operand is provably within [0, n) just
// before pc — the engine elides the bounds-check query pair for such array
// accesses.
func (ff *FuncFacts) IndexInBounds(pc int, o ir.Operand, n int) bool {
	iv := ff.OperandInterval(pc, o)
	return !iv.Empty() && iv.Lo >= 0 && iv.Hi < int64(n)
}

// PtrSite resolves the allocation site a pointer operand provably addresses
// with an in-object offset, or -1. A non-negative result means the pointed-to
// object was minted by that site's OpAlloc on every path reaching pc and the
// dereference offset cannot escape it, so the engine may skip the heap
// bounds/mapping check.
func (a *Program) PtrSite(ff *FuncFacts, pc int, o ir.Operand) int {
	org := ff.OperandOrigin(pc, o)
	if org.Site < 0 || org.Site >= len(a.SiteSize) {
		return -1
	}
	sz := a.SiteSize[org.Site]
	if sz <= 0 || org.Off.Empty() || !org.Off.Within(0, sz-1) {
		return -1
	}
	return org.Site
}

// --- Fact dumps (cmd/qcedump -facts) ---

// IntervalsString renders the non-trivial interval and origin facts, one
// line per pc, for debugging and doc examples.
func (ff *FuncFacts) IntervalsString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s intervals:\n", ff.Fn.Name)
	for pc := range ff.Fn.Instrs {
		row := ff.Intervals[pc]
		if row == nil {
			fmt.Fprintf(&b, "  %3d: unreachable\n", pc)
			continue
		}
		var parts []string
		for li, loc := range ff.Fn.Locals {
			iv := row[li]
			if iv == typeTop(loc.Type) {
				continue
			}
			s := fmt.Sprintf("%s=[%d,%d]", loc.Name, iv.Lo, iv.Hi)
			if org := ff.Origins[pc][li]; org.Site >= 0 {
				s += fmt.Sprintf("@site%d+[%d,%d]", org.Site, org.Off.Lo, org.Off.Hi)
			}
			parts = append(parts, s)
		}
		if ff.Branch[pc] != VUnknown {
			parts = append(parts, fmt.Sprintf("branch:%s", ff.Branch[pc]))
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, "  %3d: %s\n", pc, strings.Join(parts, " "))
		}
	}
	return b.String()
}

// LivenessString renders the live-local sets, one line per pc.
func (ff *FuncFacts) LivenessString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s liveness:\n", ff.Fn.Name)
	for pc := range ff.Fn.Instrs {
		var parts []string
		for li, loc := range ff.Fn.Locals {
			if ff.Live[pc][li] {
				parts = append(parts, loc.Name)
			}
		}
		fmt.Fprintf(&b, "  %3d: {%s}\n", pc, strings.Join(parts, ","))
	}
	return b.String()
}

// EffectsString renders every function's heap-effect summary.
func (a *Program) EffectsString() string {
	var b strings.Builder
	for i, fn := range a.Prog.Funcs {
		fmt.Fprintf(&b, "func %s: %s\n", fn.Name, a.Effects[i])
	}
	return b.String()
}
