package analysis

import (
	"symmerge/internal/cfg"
	"symmerge/internal/ir"
)

// Interval is an inclusive integer range over the *semantic* value of a
// scalar local: Int locals range over signed 32-bit values, Byte over
// [0,255], Bool over [0,1], Ptr over unsigned 32-bit addresses. Lo > Hi is
// the empty interval (statically unreachable).
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no value.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Const reports whether the interval pins a single value.
func (iv Interval) Const() bool { return iv.Lo == iv.Hi }

// Contains reports v ∈ iv.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Within reports iv ⊆ [lo,hi]; empty intervals are within everything.
func (iv Interval) Within(lo, hi int64) bool {
	return iv.Empty() || (iv.Lo >= lo && iv.Hi <= hi)
}

func (iv Interval) join(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{Lo: min64(iv.Lo, o.Lo), Hi: max64(iv.Hi, o.Hi)}
}

func (iv Interval) meet(o Interval) Interval {
	return Interval{Lo: max64(iv.Lo, o.Lo), Hi: min64(iv.Hi, o.Hi)}
}

// Origin tracks where a pointer value came from: the allocation site that
// minted it plus the accumulated cell-offset range. Site -1 means unknown
// (parameter, constant, merged across sites, or arithmetic we don't model);
// only OpAlloc destinations and values derived from them by ± constant-range
// arithmetic carry a site.
type Origin struct {
	Site int
	Off  Interval
}

var unknownOrigin = Origin{Site: -1}

func (o Origin) join(p Origin) Origin {
	if o.Site < 0 || p.Site < 0 || o.Site != p.Site {
		return unknownOrigin
	}
	return Origin{Site: o.Site, Off: o.Off.join(p.Off)}
}

// Type bounds: the semantic range of each scalar kind.
const (
	minInt32  = -1 << 31
	maxInt32  = 1<<31 - 1
	maxUint32 = 1<<32 - 1
)

// typeTop returns the full semantic range of a scalar type; arrays get the
// element range (an array local's interval stands for "any element").
func typeTop(t ir.Type) Interval {
	switch t.Kind {
	case ir.Bool:
		return Interval{0, 1}
	case ir.Byte, ir.ArrayByte:
		return Interval{0, 255}
	case ir.Ptr:
		return Interval{0, maxUint32}
	default:
		return Interval{minInt32, maxInt32}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ivFact is the forward fact: per-local intervals plus pointer origins.
// A nil fact is bottom (point not yet proven reachable).
type ivFact struct {
	iv  []Interval
	org []Origin
}

// intervalProblem implements Problem[*ivFact] for one function.
type intervalProblem struct {
	fn *ir.Func
	g  *cfg.FuncCFG
}

func (p *intervalProblem) Direction() Direction { return Forward }

func (p *intervalProblem) Bottom() *ivFact { return nil }

func (p *intervalProblem) Boundary() *ivFact {
	f := &ivFact{
		iv:  make([]Interval, len(p.fn.Locals)),
		org: make([]Origin, len(p.fn.Locals)),
	}
	for i, l := range p.fn.Locals {
		switch {
		case i < p.fn.Params:
			// Parameters are bound by arbitrary callers (including summary
			// recordings with placeholder symbolic arguments).
			f.iv[i] = typeTop(l.Type)
		case l.Type.Scalar():
			// Non-parameter scalars are zero-initialized by the engine.
			f.iv[i] = Interval{0, 0}
		default:
			// Array intervals stand for "any element" and stores never
			// narrow them, so they must start (and stay) at the element top.
			f.iv[i] = typeTop(l.Type)
		}
		f.org[i] = unknownOrigin
	}
	return f
}

func (p *intervalProblem) Join(a, b *ivFact) *ivFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &ivFact{iv: make([]Interval, len(a.iv)), org: make([]Origin, len(a.org))}
	for i := range a.iv {
		out.iv[i] = a.iv[i].join(b.iv[i])
		out.org[i] = a.org[i].join(b.org[i])
	}
	return out
}

func (p *intervalProblem) Equal(a, b *ivFact) bool {
	if a == nil || b == nil {
		return a == b
	}
	for i := range a.iv {
		if a.iv[i] != b.iv[i] || a.org[i] != b.org[i] {
			return false
		}
	}
	return true
}

// Widen jumps still-climbing bounds to the local's type extremes. Pointer
// origins have no branch refinement to recover precision from, so a
// still-climbing offset range drops the origin to unknown outright —
// otherwise a pointer-increment loop ascends one cell per round and the
// fixpoint never closes.
func (p *intervalProblem) Widen(prev, next *ivFact) *ivFact {
	if prev == nil || next == nil {
		return next
	}
	out := &ivFact{iv: make([]Interval, len(next.iv)), org: make([]Origin, len(next.org))}
	copy(out.org, next.org)
	for i := range next.iv {
		w := next.iv[i]
		top := typeTop(p.fn.Locals[i].Type)
		if !prev.iv[i].Empty() {
			if w.Lo < prev.iv[i].Lo {
				w.Lo = top.Lo
			}
			if w.Hi > prev.iv[i].Hi {
				w.Hi = top.Hi
			}
		}
		out.iv[i] = w
		if po, no := prev.org[i], next.org[i]; no.Site >= 0 && po.Site == no.Site &&
			(no.Off.Lo < po.Off.Lo || no.Off.Hi > po.Off.Hi) {
			out.org[i] = unknownOrigin
		}
	}
	return out
}

// operand returns the interval of an operand under the fact.
func (f *ivFact) operand(o ir.Operand) Interval {
	if o.IsConst {
		return Interval{o.Const, o.Const}
	}
	return f.iv[o.Local]
}

func (f *ivFact) origin(o ir.Operand) Origin {
	if o.IsConst {
		return unknownOrigin
	}
	return f.org[o.Local]
}

func (f *ivFact) clone() *ivFact {
	out := &ivFact{iv: make([]Interval, len(f.iv)), org: make([]Origin, len(f.org))}
	copy(out.iv, f.iv)
	copy(out.org, f.org)
	return out
}

// set returns a copy of f with dst's interval (and origin) replaced. The
// interval is clamped to the destination's type range: the engine's
// arithmetic is width-wrapping, so any candidate outside the range means
// the transfer must give up to the type top, which the callers pass.
func (p *intervalProblem) set(f *ivFact, dst int, iv Interval, org Origin) *ivFact {
	out := f.clone()
	out.iv[dst] = iv
	out.org[dst] = org
	return out
}

// fit returns cand when it lies inside dst's type range (no wraparound
// possible), and the type top otherwise.
func (p *intervalProblem) fit(dst int, cand Interval) Interval {
	top := typeTop(p.fn.Locals[dst].Type)
	if cand.Empty() {
		return cand
	}
	if cand.Lo >= top.Lo && cand.Hi <= top.Hi {
		return cand
	}
	return top
}

func (p *intervalProblem) Transfer(pc int, f *ivFact) *ivFact {
	if f == nil {
		return nil
	}
	in := &p.fn.Instrs[pc]
	if in.Dst < 0 || in.Op == ir.OpStore {
		// No scalar destination (OpStore's Dst names the array, not a
		// def): assume/assert/out/store/br/... leave the fact unchanged
		// (ignoring assume/assert constraints is a sound
		// over-approximation).
		return f
	}
	dst := in.Dst
	top := typeTop(p.fn.Locals[dst].Type)
	a := f.operand(in.A)
	b := f.operand(in.B)
	switch in.Op {
	case ir.OpMov:
		return p.set(f, dst, p.fit(dst, a), f.origin(in.A))
	case ir.OpAdd:
		iv := p.fit(dst, Interval{a.Lo + b.Lo, a.Hi + b.Hi})
		org := unknownOrigin
		if oa := f.origin(in.A); oa.Site >= 0 && !b.Empty() {
			org = Origin{Site: oa.Site, Off: Interval{oa.Off.Lo + b.Lo, oa.Off.Hi + b.Hi}}
		} else if ob := f.origin(in.B); ob.Site >= 0 && !a.Empty() {
			org = Origin{Site: ob.Site, Off: Interval{ob.Off.Lo + a.Lo, ob.Off.Hi + a.Hi}}
		}
		return p.set(f, dst, iv, org)
	case ir.OpSub:
		iv := p.fit(dst, Interval{a.Lo - b.Hi, a.Hi - b.Lo})
		org := unknownOrigin
		if oa := f.origin(in.A); oa.Site >= 0 && !b.Empty() {
			org = Origin{Site: oa.Site, Off: Interval{oa.Off.Lo - b.Hi, oa.Off.Hi - b.Lo}}
		}
		return p.set(f, dst, iv, org)
	case ir.OpMul:
		if a.Empty() || b.Empty() {
			return p.set(f, dst, top, unknownOrigin)
		}
		p1, p2, p3, p4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
		// Bail on 64-bit overflow of the candidate products themselves.
		if abs64(a.Lo) > 1<<31 || abs64(a.Hi) > 1<<31 || abs64(b.Lo) > 1<<31 || abs64(b.Hi) > 1<<31 {
			return p.set(f, dst, top, unknownOrigin)
		}
		lo := min64(min64(p1, p2), min64(p3, p4))
		hi := max64(max64(p1, p2), max64(p3, p4))
		return p.set(f, dst, p.fit(dst, Interval{lo, hi}), unknownOrigin)
	case ir.OpDiv:
		if !a.Empty() && !b.Empty() && a.Lo >= 0 && b.Lo >= 1 {
			return p.set(f, dst, p.fit(dst, Interval{a.Lo / b.Hi, a.Hi / b.Lo}), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpRem:
		if !a.Empty() && !b.Empty() && a.Lo >= 0 && b.Lo >= 1 {
			return p.set(f, dst, p.fit(dst, Interval{0, min64(a.Hi, b.Hi-1)}), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpAnd:
		if !a.Empty() && !b.Empty() && a.Lo >= 0 && b.Lo >= 0 {
			return p.set(f, dst, p.fit(dst, Interval{0, min64(a.Hi, b.Hi)}), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpOrB, ir.OpXor:
		if !a.Empty() && !b.Empty() && a.Lo >= 0 && b.Lo >= 0 {
			hi := roundUpPow2(max64(a.Hi, b.Hi))
			lo := int64(0)
			if in.Op == ir.OpOrB {
				lo = max64(a.Lo, b.Lo)
			}
			return p.set(f, dst, p.fit(dst, Interval{lo, hi}), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpShl:
		if !a.Empty() && !b.Empty() && a.Lo >= 0 && b.Lo >= 0 && b.Hi <= 31 {
			return p.set(f, dst, p.fit(dst, Interval{a.Lo << uint(b.Lo), a.Hi << uint(b.Hi)}), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpShr:
		if !a.Empty() && !b.Empty() && a.Lo >= 0 && b.Lo >= 0 && b.Hi <= 63 {
			return p.set(f, dst, p.fit(dst, Interval{a.Lo >> uint(b.Hi), a.Hi >> uint(b.Lo)}), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpNeg:
		return p.set(f, dst, p.fit(dst, Interval{-a.Hi, -a.Lo}), unknownOrigin)
	case ir.OpBNot:
		switch in.T.Kind {
		case ir.Byte:
			return p.set(f, dst, p.fit(dst, Interval{255 - a.Hi, 255 - a.Lo}), unknownOrigin)
		case ir.Int:
			return p.set(f, dst, p.fit(dst, Interval{-a.Hi - 1, -a.Lo - 1}), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpNot:
		if a.Empty() {
			return p.set(f, dst, a, unknownOrigin)
		}
		return p.set(f, dst, Interval{1 - min64(a.Hi, 1), 1 - max64(a.Lo, 0)}, unknownOrigin)
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe:
		return p.set(f, dst, compareInterval(in.Op, a, b), unknownOrigin)
	case ir.OpBoolAnd:
		switch {
		case a.Empty() || b.Empty():
			return p.set(f, dst, Interval{0, 1}, unknownOrigin)
		case a.Lo >= 1 && b.Lo >= 1:
			return p.set(f, dst, Interval{1, 1}, unknownOrigin)
		case a.Hi <= 0 || b.Hi <= 0:
			return p.set(f, dst, Interval{0, 0}, unknownOrigin)
		}
		return p.set(f, dst, Interval{0, 1}, unknownOrigin)
	case ir.OpBoolOr:
		switch {
		case a.Empty() || b.Empty():
			return p.set(f, dst, Interval{0, 1}, unknownOrigin)
		case a.Lo >= 1 || b.Lo >= 1:
			return p.set(f, dst, Interval{1, 1}, unknownOrigin)
		case a.Hi <= 0 && b.Hi <= 0:
			return p.set(f, dst, Interval{0, 0}, unknownOrigin)
		}
		return p.set(f, dst, Interval{0, 1}, unknownOrigin)
	case ir.OpIntToByte:
		if a.Within(0, 255) {
			return p.set(f, dst, a, unknownOrigin)
		}
		return p.set(f, dst, Interval{0, 255}, unknownOrigin)
	case ir.OpByteToInt, ir.OpBoolToInt:
		return p.set(f, dst, p.fit(dst, a), unknownOrigin)
	case ir.OpLoad:
		// Element range of the source array's type: byte arrays load [0,255].
		if !in.A.IsConst {
			return p.set(f, dst, typeTop(p.fn.Locals[in.A.Local].Type), unknownOrigin)
		}
		return p.set(f, dst, top, unknownOrigin)
	case ir.OpAlloc:
		return p.set(f, dst, top, Origin{Site: in.Site, Off: Interval{0, 0}})
	case ir.OpArgChar, ir.OpStdin, ir.OpSymByte:
		return p.set(f, dst, Interval{0, 255}, unknownOrigin)
	case ir.OpSymBool:
		return p.set(f, dst, Interval{0, 1}, unknownOrigin)
	case ir.OpArgc, ir.OpStdinLen:
		return p.set(f, dst, Interval{0, maxInt32}, unknownOrigin)
	default:
		// OpPtrLoad, OpCall, OpSymInt, and anything unmodelled: type top.
		return p.set(f, dst, top, unknownOrigin)
	}
}

// abs64 is |v| without the math import.
func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// roundUpPow2 returns 2^k-1 covering v (the OR/XOR upper bound for
// non-negative operands).
func roundUpPow2(v int64) int64 {
	out := int64(1)
	for out-1 < v && out < 1<<62 {
		out <<= 1
	}
	return out - 1
}

// compareInterval statically decides a comparison where possible; the
// operands' semantic domains already encode signedness, so numeric
// comparison of the bounds is exact.
func compareInterval(op ir.Op, a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{0, 1}
	}
	switch op {
	case ir.OpLt:
		if a.Hi < b.Lo {
			return Interval{1, 1}
		}
		if a.Lo >= b.Hi {
			return Interval{0, 0}
		}
	case ir.OpLe:
		if a.Hi <= b.Lo {
			return Interval{1, 1}
		}
		if a.Lo > b.Hi {
			return Interval{0, 0}
		}
	case ir.OpEq:
		if a.Const() && b.Const() && a.Lo == b.Lo {
			return Interval{1, 1}
		}
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return Interval{0, 0}
		}
	case ir.OpNe:
		if a.Const() && b.Const() && a.Lo == b.Lo {
			return Interval{0, 0}
		}
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return Interval{1, 1}
		}
	}
	return Interval{0, 1}
}

// RefineEdge sharpens facts along branch edges: the condition local becomes
// 1/0, and when the condition was defined by a comparison in the same block
// (with operands untouched since), the compared locals' intervals narrow.
// An edge whose refinement empties an interval is statically infeasible and
// propagates bottom.
func (p *intervalProblem) RefineEdge(pc, succ int, f *ivFact) *ivFact {
	if f == nil {
		return nil
	}
	in := &p.fn.Instrs[pc]
	if in.Op != ir.OpCondBr || in.A.IsConst || in.Target == in.FTarget {
		return f
	}
	var taken bool
	switch succ {
	case in.Target:
		taken = true
	case in.FTarget:
		taken = false
	default:
		return f
	}
	out := f.clone()
	cond := in.A.Local
	if taken {
		out.iv[cond] = out.iv[cond].meet(Interval{1, 1})
	} else {
		out.iv[cond] = out.iv[cond].meet(Interval{0, 0})
	}
	if out.iv[cond].Empty() {
		return nil
	}
	if cmp := p.definingCompare(pc, cond); cmp != nil {
		refineCompare(out, cmp, taken)
		for _, iv := range out.iv {
			if iv.Empty() {
				return nil
			}
		}
	}
	return out
}

// definingCompare finds the comparison defining the branch condition inside
// the branch's block, provided neither the condition nor the compared
// locals are redefined between the comparison and the branch.
func (p *intervalProblem) definingCompare(branchPC, cond int) *ir.Instr {
	b := p.g.Blocks[p.g.BlockOf[branchPC]]
	defPC := -1
	for pc := branchPC - 1; pc >= b.Start; pc-- {
		if p.fn.Instrs[pc].Dst == cond {
			defPC = pc
			break
		}
	}
	if defPC < 0 {
		return nil
	}
	cmp := &p.fn.Instrs[defPC]
	switch cmp.Op {
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe:
	default:
		return nil
	}
	for pc := defPC + 1; pc < branchPC; pc++ {
		d := p.fn.Instrs[pc].Dst
		if d < 0 {
			continue
		}
		if (!cmp.A.IsConst && d == cmp.A.Local) || (!cmp.B.IsConst && d == cmp.B.Local) {
			return nil
		}
	}
	return cmp
}

// refineCompare narrows the compared operands' intervals in place on out.
func refineCompare(out *ivFact, cmp *ir.Instr, taken bool) {
	a := out.operand(cmp.A)
	b := out.operand(cmp.B)
	op := cmp.Op
	if !taken {
		// Negate: !(a<b) = b<=a, !(a<=b) = b<a, !(a==b) = a!=b, !(a!=b) = a==b.
		switch op {
		case ir.OpLt:
			op, a, b = ir.OpLe, b, a
			defer func() { writeBack(out, cmp.B, cmp.A, a, b) }()
		case ir.OpLe:
			op, a, b = ir.OpLt, b, a
			defer func() { writeBack(out, cmp.B, cmp.A, a, b) }()
		case ir.OpEq:
			op = ir.OpNe
			defer func() { writeBack(out, cmp.A, cmp.B, a, b) }()
		case ir.OpNe:
			op = ir.OpEq
			defer func() { writeBack(out, cmp.A, cmp.B, a, b) }()
		}
	} else {
		defer func() { writeBack(out, cmp.A, cmp.B, a, b) }()
	}
	switch op {
	case ir.OpLt: // a < b
		a = a.meet(Interval{a.Lo, b.Hi - 1})
		b = b.meet(Interval{a.Lo + 1, b.Hi})
	case ir.OpLe: // a <= b
		a = a.meet(Interval{a.Lo, b.Hi})
		b = b.meet(Interval{a.Lo, b.Hi})
	case ir.OpEq:
		m := a.meet(b)
		a, b = m, m
	case ir.OpNe:
		if b.Const() {
			if a.Lo == b.Lo {
				a.Lo++
			}
			if a.Hi == b.Lo {
				a.Hi--
			}
		}
		if a.Const() {
			if b.Lo == a.Lo {
				b.Lo++
			}
			if b.Hi == a.Lo {
				b.Hi--
			}
		}
	}
}

// writeBack stores refined operand intervals into the fact (constants have
// no slot to refine).
func writeBack(out *ivFact, oa, ob ir.Operand, a, b Interval) {
	if !oa.IsConst {
		out.iv[oa.Local] = a
	}
	if !ob.IsConst {
		out.iv[ob.Local] = b
	}
}
