package analysis

import (
	"fmt"
	"sort"
	"strings"

	"symmerge/internal/cfg"
	"symmerge/internal/ir"
)

// Effect is a function's transitive may-interaction with the heap, expressed
// over the program-wide allocation-site numbering: which sites it may
// allocate at, and which sites' objects it may read or write through
// pointers. External marks heap traffic the analysis could not attribute to
// a specific site with in-bounds offsets (pointers from parameters, merged
// origins, offset ranges that may escape the object) — callers must assume
// such a function can touch anything, which keeps it behind the summary
// heap gate.
type Effect struct {
	Sites    []int // sites allocated at (sorted, deduplicated)
	Reads    []int // sites read through OpPtrLoad
	Writes   []int // sites written through OpPtrStore
	External bool  // heap traffic not attributable to known sites
}

// Touches reports whether the function interacts with the heap at all.
func (e Effect) Touches() bool {
	return e.External || len(e.Sites) > 0 || len(e.Reads) > 0 || len(e.Writes) > 0
}

// SiteStable reports whether the effect is precise enough to summarize: all
// heap traffic is attributed to known allocation sites.
func (e Effect) SiteStable() bool { return !e.External }

func (e Effect) String() string {
	if !e.Touches() {
		return "pure"
	}
	if e.External {
		return "external"
	}
	var b strings.Builder
	part := func(tag string, sites []int) {
		if len(sites) == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s{", tag)
		for i, s := range sites {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		b.WriteByte('}')
	}
	part("alloc", e.Sites)
	part("read", e.Reads)
	part("write", e.Writes)
	return b.String()
}

// siteSizes scans the program for the constant cell count of each
// allocation site (-1 when a site's size is not a compile-time constant).
func siteSizes(p *ir.Program) []int64 {
	sizes := make([]int64, p.AllocSites)
	for i := range sizes {
		sizes[i] = -1
	}
	for _, fn := range p.Funcs {
		for pc := range fn.Instrs {
			in := &fn.Instrs[pc]
			if in.Op == ir.OpAlloc && in.A.IsConst && in.Site >= 0 && in.Site < len(sizes) {
				sizes[in.Site] = in.A.Const
			}
		}
	}
	return sizes
}

// computeEffects folds per-instruction heap traffic bottom-up over the call
// graph, attributing pointer dereferences to allocation sites via the
// interval analysis' pointer origins. Any function in a recursion cycle is
// External (no fixpoint over effect sets is attempted; the engine bounds
// recursion dynamically anyway).
func computeEffects(p *ir.Program, cg *cfg.CallGraph, funcs []*FuncFacts, sizes []int64) []Effect {
	effects := make([]Effect, len(p.Funcs))
	addSite := func(set *[]int, s int) {
		i := sort.SearchInts(*set, s)
		if i < len(*set) && (*set)[i] == s {
			return
		}
		*set = append(*set, 0)
		copy((*set)[i+1:], (*set)[i:])
		(*set)[i] = s
	}
	// deref resolves the site a pointer operand can touch: the origin site
	// when the offset range provably stays inside the object, -1 otherwise.
	deref := func(ff *FuncFacts, pc int, o ir.Operand) int {
		org := ff.OperandOrigin(pc, o)
		if org.Site < 0 || org.Site >= len(sizes) {
			return -1
		}
		sz := sizes[org.Site]
		if sz <= 0 || org.Off.Empty() || !org.Off.Within(0, sz-1) {
			return -1
		}
		return org.Site
	}
	for _, fi := range cg.BottomUp {
		fn := p.Funcs[fi]
		eff := &effects[fi]
		if cg.InCycle[fi] {
			eff.External = true
			continue
		}
		ff := funcs[fi]
		for pc := range fn.Instrs {
			in := &fn.Instrs[pc]
			switch in.Op {
			case ir.OpAlloc:
				if in.A.IsConst && in.Site >= 0 {
					addSite(&eff.Sites, in.Site)
				} else {
					eff.External = true
				}
			case ir.OpPtrLoad:
				if ff.Intervals[pc] == nil {
					continue // statically unreachable
				}
				if s := deref(ff, pc, in.A); s >= 0 {
					addSite(&eff.Reads, s)
				} else {
					eff.External = true
				}
			case ir.OpPtrStore:
				if ff.Intervals[pc] == nil {
					continue
				}
				if s := deref(ff, pc, in.A); s >= 0 {
					addSite(&eff.Writes, s)
				} else {
					eff.External = true
				}
			case ir.OpCall:
				ce := effects[in.Callee]
				eff.External = eff.External || ce.External
				for _, s := range ce.Sites {
					addSite(&eff.Sites, s)
				}
				for _, s := range ce.Reads {
					addSite(&eff.Reads, s)
				}
				for _, s := range ce.Writes {
					addSite(&eff.Writes, s)
				}
			}
		}
	}
	return effects
}
