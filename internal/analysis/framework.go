// Package analysis is a generic forward/backward dataflow framework over
// the internal/cfg control-flow graphs, plus the production analyses built
// on it: interval/constancy propagation with pointer-origin tracking (the
// engine consults it to prune statically-infeasible branch sides and elide
// provably-in-bounds CheckBounds queries), allocation-site heap-effect
// summaries (internal/summary consults them to lift the static heap gate on
// compositional summaries), and may-liveness of locals with full-overwrite
// array kills (QCE's Qadd mask and the merge-key slimming in internal/core).
//
// Everything here is a pure function of the program: fact tables are
// computed once, shared read-only across engines and workers, and iterated
// in deterministic (reverse-)postorder, so every artifact derived from them
// — pruned branch sets, elided queries, merge keys — is stable across runs,
// worker counts, and strategies. That stability is what lets the engine
// promise byte-identical corpora with the analyses on or off.
package analysis

import (
	"symmerge/internal/cfg"
)

// Direction selects which way facts flow.
type Direction int

// Flow directions.
const (
	Forward Direction = iota
	Backward
)

// Problem defines one dataflow problem over a single function: the lattice
// (Bottom/Join/Equal), the boundary fact, and the per-instruction transfer.
// Facts are treated as immutable values: Transfer and Join must return
// fresh values (or provably-unaliased ones) rather than mutate arguments.
type Problem[F any] interface {
	Direction() Direction
	// Bottom is the initial fact at every program point (the "unreached"
	// value; Join(Bottom, x) = x).
	Bottom() F
	// Boundary is the fact at the flow entry: function entry for forward
	// problems, every function exit for backward ones.
	Boundary() F
	// Join combines facts meeting at a control-flow join.
	Join(a, b F) F
	// Equal reports lattice equality (fixpoint detection).
	Equal(a, b F) bool
	// Transfer flows a fact through the instruction at pc: for forward
	// problems f is the fact before pc and the result the fact after it;
	// for backward problems the mirror.
	Transfer(pc int, f F) F
}

// EdgeRefiner is an optional Problem extension: RefineEdge sharpens the
// fact flowing along the CFG edge from the terminator at pc to the block
// starting at succ (branch-side refinement for forward problems).
type EdgeRefiner[F any] interface {
	RefineEdge(pc, succ int, f F) F
}

// Widener is an optional Problem extension for infinite-height lattices:
// the solver applies Widen at loop-header entry facts once a header has
// been revisited enough times, guaranteeing termination.
type Widener[F any] interface {
	Widen(prev, next F) F
}

// widenAfter is how many times a loop header's entry fact may change
// before the solver starts widening it. Two plain rounds keep counted
// loops precise (init joined with one increment brackets the range);
// widening from the third change on bounds the climb.
const widenAfter = 2

// Solve runs the worklist fixpoint for p over g and returns the fact table:
// facts[pc] is the fact at the program point immediately before instruction
// pc (for both directions — a backward problem's facts[pc] is what holds
// when pc is about to execute), with one extra slot facts[len] for the
// fall-through end of straight-line functions. Blocks are iterated in RPO
// (forward) or reverse RPO (backward) in repeated deterministic rounds
// until stable, so the table is a pure function of the program.
func Solve[F any](g *cfg.FuncCFG, p Problem[F]) []F {
	n := 0
	if g.Fn != nil {
		n = len(g.Fn.Instrs)
	}
	facts := make([]F, n+1)
	for i := range facts {
		facts[i] = p.Bottom()
	}
	if n == 0 {
		return facts
	}
	if p.Direction() == Forward {
		solveForward(g, p, facts)
	} else {
		solveBackward(g, p, facts)
	}
	return facts
}

func solveForward[F any](g *cfg.FuncCFG, p Problem[F], facts []F) {
	refine, _ := p.(EdgeRefiner[F])
	widen, _ := p.(Widener[F])
	facts[0] = p.Join(facts[0], p.Boundary())
	changes := make([]int, len(g.Blocks)) // entry-fact change count per block
	fn := g.Fn
	for changed := true; changed; {
		changed = false
		for _, bi := range g.RPO {
			b := g.Blocks[bi]
			w := facts[b.Start]
			for pc := b.Start; pc < b.End; pc++ {
				w = p.Transfer(pc, w)
				if pc+1 < b.End {
					if !p.Equal(facts[pc+1], w) {
						facts[pc+1] = w
						changed = true
					}
					w = facts[pc+1]
				}
			}
			term := b.End - 1
			for _, sb := range b.Succs {
				out := w
				if refine != nil {
					out = refine.RefineEdge(term, g.Blocks[sb].Start, out)
				}
				entry := g.Blocks[sb].Start
				joined := p.Join(facts[entry], out)
				if !p.Equal(facts[entry], joined) {
					changes[sb]++
					isHeader := g.LoopOf[sb] >= 0 && g.Loops[g.LoopOf[sb]].Header == sb
					// Headers widen early; any block still climbing after
					// many rounds widens too (termination backstop for
					// shapes findLoops does not classify).
					if widen != nil && ((isHeader && changes[sb] > widenAfter) || changes[sb] > 4*widenAfter) {
						joined = widen.Widen(facts[entry], joined)
					}
					facts[entry] = joined
					changed = true
				}
			}
			// Fall-through off the end of the function (no terminator).
			if !fn.Instrs[term].IsTerminator() && b.End == len(fn.Instrs) {
				if !p.Equal(facts[b.End], w) {
					facts[b.End] = w
					changed = true
				}
			}
		}
	}
}

func solveBackward[F any](g *cfg.FuncCFG, p Problem[F], facts []F) {
	fn := g.Fn
	n := len(fn.Instrs)
	var succ []int
	for changed := true; changed; {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.Blocks[g.RPO[i]]
			for pc := b.End - 1; pc >= b.Start; pc-- {
				in := &fn.Instrs[pc]
				var out F
				if in.IsTerminator() {
					succ = in.Successors(pc, succ[:0])
					out = p.Boundary()
					first := true
					for _, s := range succ {
						if s > n {
							continue
						}
						if first {
							out = facts[s]
							first = false
						} else {
							out = p.Join(out, facts[s])
						}
					}
				} else {
					out = facts[pc+1]
				}
				nf := p.Transfer(pc, out)
				if !p.Equal(facts[pc], nf) {
					facts[pc] = nf
					changed = true
				}
			}
		}
	}
}
