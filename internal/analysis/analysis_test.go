package analysis_test

import (
	"strings"
	"testing"
	"time"

	"symmerge/internal/analysis"
	"symmerge/internal/ir"
	"symmerge/internal/lang"
)

func compile(t *testing.T, src string) (*ir.Program, *analysis.Program) {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p, analysis.Analyze(p)
}

func funcByName(t *testing.T, p *ir.Program, name string) int {
	t.Helper()
	for i, fn := range p.Funcs {
		if fn.Name == name {
			return i
		}
	}
	t.Fatalf("no function %q", name)
	return -1
}

func localByName(t *testing.T, fn *ir.Func, name string) int {
	t.Helper()
	for i, l := range fn.Locals {
		if l.Name == name {
			return i
		}
	}
	t.Fatalf("no local %q in %s", name, fn.Name)
	return -1
}

// opPCs returns the pcs of every instruction with the given opcode.
func opPCs(fn *ir.Func, op ir.Op) []int {
	var out []int
	for pc := range fn.Instrs {
		if fn.Instrs[pc].Op == op {
			out = append(out, pc)
		}
	}
	return out
}

func TestBranchVerdicts(t *testing.T) {
	p, ap := compile(t, `
void main() {
    int x = 3;
    if (x < 5) { putchar('a'); } else { putchar('b'); }
    int y = toint(argchar(1, 0));
    if (y < 0) { putchar('c'); }
    if (y < 100) { putchar('d'); }
    halt(0);
}
`)
	ff := ap.Funcs[funcByName(t, p, "main")]
	brs := opPCs(ff.Fn, ir.OpCondBr)
	if len(brs) != 3 {
		t.Fatalf("got %d conditional branches, want 3", len(brs))
	}
	want := []analysis.Verdict{analysis.VTrue, analysis.VFalse, analysis.VUnknown}
	for i, pc := range brs {
		if ff.Branch[pc] != want[i] {
			t.Errorf("branch %d (pc %d): verdict %v, want %v", i, pc, ff.Branch[pc], want[i])
		}
	}
}

func TestIndexInBoundsInCountedLoop(t *testing.T) {
	p, ap := compile(t, `
void main() {
    int buf[4];
    for (int i = 0; i < 4; i++) {
        buf[i] = i;
    }
    int j = toint(argchar(1, 0));
    int v = buf[j & 3];
    int w = buf[j];
    putchar(tobyte((v + w) & 255));
    halt(0);
}
`)
	ff := ap.Funcs[funcByName(t, p, "main")]
	stores := opPCs(ff.Fn, ir.OpStore)
	if len(stores) != 1 {
		t.Fatalf("got %d stores, want 1", len(stores))
	}
	// OpStore's index is operand A: i refined to [0,3] inside the loop.
	if pc := stores[0]; !ff.IndexInBounds(pc, ff.Fn.Instrs[pc].A, 4) {
		t.Errorf("loop store index not proven in [0,4) at pc %d", pc)
	}
	loads := opPCs(ff.Fn, ir.OpLoad)
	if len(loads) != 2 {
		t.Fatalf("got %d loads, want 2", len(loads))
	}
	// buf[j & 3] masks into range; OpLoad's index is operand B.
	if pc := loads[0]; !ff.IndexInBounds(pc, ff.Fn.Instrs[pc].B, 4) {
		t.Errorf("masked load index not proven in [0,4) at pc %d", pc)
	}
	// buf[j] ranges over the whole byte: not provable.
	if pc := loads[1]; ff.IndexInBounds(pc, ff.Fn.Instrs[pc].B, 4) {
		t.Errorf("unbounded load index wrongly proven in bounds at pc %d", pc)
	}
}

func TestPtrSiteConstantOffsets(t *testing.T) {
	p, ap := compile(t, `
void main() {
    ptr h = alloc(4);
    h[1] = 7;
    int x = h[1];
    int j = toint(argchar(1, 0));
    int y = h[j];
    putchar(tobyte((x + y) & 255));
    halt(0);
}
`)
	ff := ap.Funcs[funcByName(t, p, "main")]
	if pcs := opPCs(ff.Fn, ir.OpPtrStore); len(pcs) != 1 {
		t.Fatalf("got %d ptr stores", len(pcs))
	} else if site := ap.PtrSite(ff, pcs[0], ff.Fn.Instrs[pcs[0]].A); site < 0 {
		t.Error("constant-offset ptr store not resolved to its site")
	}
	loads := opPCs(ff.Fn, ir.OpPtrLoad)
	if len(loads) != 2 {
		t.Fatalf("got %d ptr loads, want 2", len(loads))
	}
	if site := ap.PtrSite(ff, loads[0], ff.Fn.Instrs[loads[0]].A); site < 0 {
		t.Error("h[1] load not resolved to its site")
	}
	// h[j] with j in [0,255] escapes the 4-cell object: must stay unproven.
	if site := ap.PtrSite(ff, loads[1], ff.Fn.Instrs[loads[1]].A); site >= 0 {
		t.Errorf("h[j] load wrongly proven in-object (site %d)", site)
	}
}

// TestPointerLoopConverges is the regression for the widening bug that hung
// the sort model: a pointer advanced inside a loop climbs its origin offset
// each round, and Widen must drop the origin to unknown instead of letting
// the fixpoint ascend one cell at a time.
func TestPointerLoopConverges(t *testing.T) {
	src := `
void main() {
    int n = toint(argchar(1, 0));
    ptr buf = alloc(300);
    ptr q = buf;
    for (int i = 0; i < n; i++) {
        q[0] = i;
        q = q + 1;
    }
    putchar(tobyte(buf[0] & 255));
    halt(0);
}
`
	done := make(chan struct{})
	go func() {
		p, err := lang.Compile(src)
		if err != nil {
			t.Error(err)
		} else {
			analysis.Analyze(p)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("interval fixpoint did not converge on a pointer-increment loop")
	}
}

func TestHeapEffects(t *testing.T) {
	p, ap := compile(t, `
int contained(int a) {
    ptr h = alloc(2);
    h[0] = a;
    if (h[0] > 5) { h[1] = 1; } else { h[1] = 2; }
    return h[1];
}

int pure(int a) {
    return a + 1;
}

int escaping(int a) {
    ptr g = alloc(3);
    ptr q = g + a;
    q[0] = 1;
    return g[0];
}

void main() {
    int x = toint(argchar(1, 0));
    putchar(tobyte((contained(x) + pure(x) + escaping(x & 1)) & 255));
    halt(0);
}
`)
	eff := func(name string) *analysis.Effect { return &ap.Effects[funcByName(t, p, name)] }

	if e := eff("pure"); !e.SiteStable() || len(e.Sites) != 0 || len(e.Reads) != 0 || len(e.Writes) != 0 {
		t.Errorf("pure: %v", e)
	}
	if e := eff("contained"); !e.SiteStable() {
		t.Errorf("contained: not site-stable: %v", e)
	} else {
		own := map[int]bool{}
		for _, s := range e.Sites {
			own[s] = true
		}
		for _, s := range append(append([]int{}, e.Reads...), e.Writes...) {
			if !own[s] {
				t.Errorf("contained: touches foreign site %d: %v", s, e)
			}
		}
		if len(e.Sites) != 1 {
			t.Errorf("contained: %d sites, want 1", len(e.Sites))
		}
	}
	// main calls all three, so its effects include theirs transitively.
	if e := eff("main"); len(e.Sites) < 2 {
		t.Errorf("main: transitive sites missing: %v", e)
	}
}

func TestLivenessFullOverwriteKill(t *testing.T) {
	p, ap := compile(t, `
void main() {
    int buf[4];
    int s = toint(argchar(1, 0));
    for (int i = 0; i < 4; i++) {
        buf[i] = s;
    }
    int v = buf[2];
    putchar(tobyte(v & 255));
    halt(0);
}
`)
	ff := ap.Funcs[funcByName(t, p, "main")]
	arr := localByName(t, ff.Fn, "buf")
	// Before the loop the array is fully overwritten before any read:
	// dead at the argchar prefix despite the in-loop stores "using" it.
	pre := opPCs(ff.Fn, ir.OpArgChar)
	if len(pre) != 1 {
		t.Fatalf("got %d argchar instrs", len(pre))
	}
	if ff.Live[pre[0]][arr] {
		t.Error("fully-overwritten array still live before the loop")
	}
	// Inside the loop the partially-written array is live (low cells
	// survive to the post-loop read).
	stores := opPCs(ff.Fn, ir.OpStore)
	if len(stores) != 1 {
		t.Fatalf("got %d stores", len(stores))
	}
	if !ff.Live[stores[0]][arr] {
		t.Error("array dead inside the overwriting loop (unsound)")
	}
	// The scalar s is live before the loop (read by every store).
	if !ff.Live[stores[0]][localByName(t, ff.Fn, "s")] {
		t.Error("stored scalar not live at the store")
	}
}

func TestFactDumpsRender(t *testing.T) {
	p, ap := compile(t, `
void main() {
    int x = 1;
    for (int i = 0; i < 3; i++) {
        x = x + i;
    }
    putchar(tobyte(x & 255));
    halt(0);
}
`)
	ff := ap.Funcs[funcByName(t, p, "main")]
	iv := ff.IntervalsString()
	if !strings.Contains(iv, "intervals:") || !strings.Contains(iv, "i=[") {
		t.Errorf("intervals dump missing loop facts:\n%s", iv)
	}
	lv := ff.LivenessString()
	if !strings.Contains(lv, "liveness:") {
		t.Errorf("liveness dump malformed:\n%s", lv)
	}
	if es := ap.EffectsString(); !strings.Contains(es, "main") {
		t.Errorf("effects dump malformed:\n%s", es)
	}
}
