package corpus

// Resume-time corpus validation. A crash-safe writer never leaves torn JSON
// at a final path (writeJSON goes through a temp file + rename), but a
// corpus being resumed may still contain damage from other sources: files
// written by a pre-crash-safety version, filesystems that tear on power
// loss, or manual tampering. ValidateDir is the corpusgen -check-style
// sweep a resuming run performs: instead of fatally refusing the corpus, it
// quarantines each unreadable entry (renaming it aside) so the resumed
// exploration regenerates the test deterministically.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// QuarantineSuffix is appended to an unreadable test file's name when it is
// moved aside; quarantined files are kept for post-mortems, never read.
const QuarantineSuffix = ".quarantined"

// ValidateDir scans a corpus directory for damage a resumed run must heal:
// stray temp files from an interrupted atomic write are deleted, and test
// files that fail to parse (torn JSON, wrong shape, name/ID mismatch) are
// renamed aside with QuarantineSuffix. It returns the quarantined test IDs
// — the resume path removes these from the writer's dedup set so the tests
// are regenerated — sorted for determinism. A missing directory is an empty
// corpus, not an error. The manifest is not validated here: Finalize
// rewrites it wholesale.
func ValidateDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var quarantined []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
			continue
		}
		if name == ManifestName || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if validTestFile(filepath.Join(dir, name), id) {
			continue
		}
		if err := os.Rename(filepath.Join(dir, name), filepath.Join(dir, name+QuarantineSuffix)); err != nil {
			return nil, err
		}
		quarantined = append(quarantined, id)
	}
	sort.Strings(quarantined)
	return quarantined, nil
}

// validTestFile reports whether the file parses as a test whose recorded
// identity matches both its file name and its recorded input.
func validTestFile(path, id string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var t Test
	if err := json.Unmarshal(data, &t); err != nil {
		return false
	}
	return t.Version == FormatVersion && t.ID == id && InputID(t.Args, t.Stdin) == id
}

// StateSnapshot captures the writer's dedup and counter state for a
// checkpoint: the sorted set of input IDs written so far plus the emission
// counters. Restoring this exact state in a resumed writer is what keeps
// the final counters identical to an uninterrupted run's — tests generated
// after the snapshot re-emit idempotently (same input hash, same bytes).
func (w *Writer) StateSnapshot() (seen []string, emitted, skipped int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	seen = make([]string, 0, len(w.seen))
	for id := range w.seen {
		seen = append(seen, id)
	}
	sort.Strings(seen)
	return seen, w.emitted, w.skipped
}

// RestoreState primes a fresh writer with a checkpointed StateSnapshot.
// IDs in seen are treated as already written (their files survive on disk);
// pass the quarantined IDs from ValidateDir through dropped so their tests
// are regenerated rather than trusted.
func (w *Writer) RestoreState(seen []string, emitted, skipped int, dropped []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	drop := make(map[string]bool, len(dropped))
	for _, id := range dropped {
		drop[id] = true
	}
	for _, id := range seen {
		if !drop[id] {
			w.seen[id] = true
		}
	}
	w.emitted = emitted
	w.skipped = skipped
}
