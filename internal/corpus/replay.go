package corpus

// The replay oracle: load a corpus directory, execute every test through
// the independent IR interpreter, and check the recorded expectations and
// the coverage-parity invariant.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"symmerge/internal/ir"
)

// Load reads and validates a corpus directory: the manifest decodes, every
// listed test file decodes, and each test's recorded ID matches the hash of
// its input (so a corrupted or hand-edited file cannot masquerade as its
// name). Tests are returned in manifest (ID) order.
func Load(dir string) (*Manifest, []*Test, error) {
	var m Manifest
	if err := readJSON(filepath.Join(dir, ManifestName), &m); err != nil {
		return nil, nil, err
	}
	if m.Schema != Schema {
		return nil, nil, fmt.Errorf("corpus: %s has schema %q, want %q", dir, m.Schema, Schema)
	}
	tests := make([]*Test, 0, len(m.Tests))
	for _, e := range m.Tests {
		var t Test
		if err := readJSON(filepath.Join(dir, e.File), &t); err != nil {
			return nil, nil, err
		}
		if t.Version != FormatVersion {
			return nil, nil, fmt.Errorf("corpus: test %s has version %d, want %d", e.File, t.Version, FormatVersion)
		}
		if got := InputID(t.Args, t.Stdin); got != t.ID || t.ID != e.ID {
			return nil, nil, fmt.Errorf("corpus: test %s identity mismatch (recorded %s, input hashes to %s)", e.File, t.ID, got)
		}
		tests = append(tests, &t)
	}
	return &m, tests, nil
}

// Mismatch is one replay divergence: a recorded expectation the concrete
// re-execution did not meet.
type Mismatch struct {
	TestID string
	Field  string // "output", "exit", "assert", "assert_msg", "assume", "coverage"
	Want   string
	Got    string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("test %s: %s: want %s, got %s", m.TestID, m.Field, m.Want, m.Got)
}

// Report is the outcome of replaying a corpus.
type Report struct {
	Tests      int
	Mismatches []Mismatch
	// Manifest is the corpus manifest the replay ran against.
	Manifest *Manifest

	// Coverage parity: the union of the tests' concrete covered sets
	// against the symbolic run's covered set from the manifest.
	SymCovered    int
	ReplayCovered int
	// MissingLocs are locations the symbolic run covered that no replay
	// reached; ExtraLocs the reverse. Parity holds iff both are empty.
	MissingLocs []int
	ExtraLocs   []int
}

// ParityOK reports whether replay coverage matches the symbolic covered
// set. When the emission skipped non-replayable error tests (bounds /
// solver-budget paths, Manifest.Skipped > 0) their coverage legitimately
// has no replaying witness, so only extra replay coverage — locations the
// symbolic run never reached — counts against parity; a corpus with no
// skips is held to exact equality.
func (r *Report) ParityOK() bool {
	if r.Manifest != nil && r.Manifest.Skipped > 0 {
		return len(r.ExtraLocs) == 0
	}
	return len(r.MissingLocs) == 0 && len(r.ExtraLocs) == 0
}

// OK reports a fully clean replay: no mismatches and coverage parity.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 && r.ParityOK() }

// Summary renders a one-paragraph human-readable report.
func (r *Report) Summary() string {
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("%d mismatches, %d/%d missing/extra locations",
			len(r.Mismatches), len(r.MissingLocs), len(r.ExtraLocs))
	}
	return fmt.Sprintf("replayed %d tests: %s (coverage: replay %d vs symbolic %d locations)",
		r.Tests, status, r.ReplayCovered, r.SymCovered)
}

// Replay executes every test of the corpus at dir through the IR
// interpreter, asserting each recorded expectation (output bytes, exit
// code, assert failure and message, the per-test covered set) and the
// corpus-wide coverage-parity invariant. It returns an error only for
// structural problems (unreadable corpus, program mismatch); semantic
// divergences are reported as Mismatches.
func Replay(dir string, prog *ir.Program) (*Report, error) {
	m, tests, err := Load(dir)
	if err != nil {
		return nil, err
	}
	if h := ProgramHash(prog); h != m.Program.Hash {
		return nil, fmt.Errorf("corpus: %s was generated from program %s…, replaying against %s…; regenerate the corpus",
			dir, m.Program.Hash[:12], h[:12])
	}
	sym, err := RangesToMask(m.SymCovered, prog.NumLocations())
	if err != nil {
		return nil, err
	}
	rep := &Report{Manifest: m}
	for _, c := range sym {
		if c {
			rep.SymCovered++
		}
	}
	rep.Tests = len(tests)
	union := make([]bool, prog.NumLocations())
	for _, t := range tests {
		res, err := ir.InterpWith(prog, t.Args, t.Stdin, ir.InterpOptions{Coverage: true})
		if err != nil {
			return nil, fmt.Errorf("corpus: replaying test %s: %w", t.ID, err)
		}
		rep.check(t, res)
		for i, c := range res.Covered {
			union[i] = union[i] || c
		}
	}
	for i := range union {
		switch {
		case union[i] && !sym[i]:
			rep.ExtraLocs = append(rep.ExtraLocs, i)
		case !union[i] && sym[i]:
			rep.MissingLocs = append(rep.MissingLocs, i)
		}
		if union[i] {
			rep.ReplayCovered++
		}
	}
	return rep, nil
}

// check compares one test's recorded expectations against its concrete
// re-execution.
func (r *Report) check(t *Test, res *ir.InterpResult) {
	bad := func(field, want, got string) {
		r.Mismatches = append(r.Mismatches, Mismatch{TestID: t.ID, Field: field, Want: want, Got: got})
	}
	if res.AssumeFailed {
		bad("assume", "a completed path", "assume-stopped run")
		return
	}
	if string(res.Output) != string(t.Output) {
		bad("output", fmt.Sprintf("%q", t.Output), fmt.Sprintf("%q", res.Output))
	}
	if res.Exit != t.Exit {
		bad("exit", fmt.Sprint(t.Exit), fmt.Sprint(res.Exit))
	}
	if res.AssertFailed != t.AssertFailed {
		bad("assert", fmt.Sprint(t.AssertFailed), fmt.Sprint(res.AssertFailed))
	} else if t.AssertFailed && res.Msg != t.AssertMsg {
		bad("assert_msg", fmt.Sprintf("%q", t.AssertMsg), fmt.Sprintf("%q", res.Msg))
	}
	if got := MaskToRanges(res.Covered); got != t.Covered {
		bad("coverage", t.Covered, got)
	}
}

// DirDigest hashes a corpus directory's contents — every regular file,
// sorted by name, name and bytes — into one hex digest. Two corpora are
// byte-identical iff their digests match; the determinism suite compares
// digests across worker counts and repeated runs.
func DirDigest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func readJSON(path string, v interface{}) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("corpus: decoding %s: %w", path, err)
	}
	return nil
}
