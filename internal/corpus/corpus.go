// Package corpus is the replayable test-case store: a versioned on-disk
// format for the concrete tests a symbolic exploration generates, a writer
// that streams them out as the engine finishes paths, and a replay oracle
// that executes a stored corpus through the independent IR interpreter
// (internal/ir.InterpWith) and checks every recorded expectation.
//
// Layout: one JSON file per test, named by the hash of its concrete input
// (argv bytes + stdin bytes), plus a manifest.json tying the set together.
// Naming by input hash makes deduplication structural — two explorations
// that reach the same concrete input write the same file — and, because
// test inputs come from canonical minimal models (solver.MinModelIn) and
// expectations are evaluated under those models, a corpus is a pure
// function of the explored path set: re-running with a different worker
// count, search strategy, or cache state reproduces it byte for byte.
//
// Each test records the engine's expectations (output bytes, exit code,
// assert failure) and the covered-location set of its concrete execution.
// Replay re-executes every input and fails on any divergence, and
// additionally checks coverage parity: the union of the tests' concrete
// coverage must equal the symbolic run's covered set stored in the
// manifest — the end-to-end evidence that merged exploration visits
// exactly the concrete behaviors unmerged exploration does.
package corpus

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"symmerge/internal/checkpoint/faultinject"
	"symmerge/internal/ir"
)

// Schema identifies the on-disk format; bump on incompatible changes.
const Schema = "symmerge-corpus/v1"

// FormatVersion is the per-test file format version.
const FormatVersion = 1

// Test is one persisted test case. Byte slices render as base64 in JSON.
type Test struct {
	Version int    `json:"version"`
	ID      string `json:"id"` // input hash; also the file's base name

	// Concrete input.
	Args  [][]byte `json:"args"`
	Stdin []byte   `json:"stdin,omitempty"`

	// Expectations, as predicted by the symbolic engine's model evaluation
	// (not by the interpreter — replay is a genuine cross-check).
	Output       []byte `json:"output,omitempty"`
	Exit         int64  `json:"exit"`
	AssertFailed bool   `json:"assert_failed,omitempty"`
	AssertMsg    string `json:"assert_msg,omitempty"`

	// Covered is the covered-location set (ir.Program.LocIndex space) of
	// this input's concrete execution, recorded at write time as a compact
	// sorted range list ("0-14,16,19-42").
	Covered string `json:"covered"`
}

// Entry is one manifest row.
type Entry struct {
	ID   string `json:"id"`
	File string `json:"file"`
}

// ProgramInfo pins the corpus to the program it was generated from.
type ProgramInfo struct {
	Name string `json:"name,omitempty"`
	// Hash is the SHA-256 of the program's IR disassembly; replay refuses
	// a corpus whose hash does not match the program it is given.
	Hash      string `json:"hash"`
	Locations int    `json:"locations"`
}

// Manifest ties a corpus directory together.
type Manifest struct {
	Schema  string      `json:"schema"`
	Program ProgramInfo `json:"program"`
	// Config is the canonical descriptor of the producing exploration
	// (merge regime, QCE, strategy, seed, input sizes). Scheduling knobs
	// (worker count) are deliberately excluded: sharding must not change
	// the corpus.
	Config string `json:"config"`
	// Completed records whether the producing exploration drained its
	// worklist; a partial (budget-stopped) corpus makes no coverage-parity
	// or determinism promises.
	Completed bool `json:"completed"`
	// Emitted counts tests received by the writer (pre-dedup); Deduped
	// counts duplicates dropped by input-hash identity; Skipped counts
	// error tests excluded because their failure is an engine analysis
	// (bounds checking, solver budget) with no concrete-replay
	// counterpart.
	Emitted int `json:"emitted"`
	Deduped int `json:"deduped"`
	Skipped int `json:"skipped,omitempty"`
	// SymCovered is the symbolic exploration's covered-location set as a
	// sorted range list over LocIndex values — what replay coverage is
	// compared against.
	SymCovered string `json:"sym_covered"`
	// Tests lists the corpus sorted by ID.
	Tests []Entry `json:"tests"`
}

// ManifestName is the manifest's file name inside a corpus directory.
const ManifestName = "manifest.json"

// InputID hashes a concrete input (argv + stdin) into the test's identity:
// the first 16 bytes of SHA-256 over a length-prefixed encoding, hex.
func InputID(args [][]byte, stdin []byte) string {
	h := sha256.New()
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(args)))
	h.Write(n[:])
	for _, a := range args {
		binary.BigEndian.PutUint32(n[:], uint32(len(a)))
		h.Write(n[:])
		h.Write(a)
	}
	binary.BigEndian.PutUint32(n[:], uint32(len(stdin)))
	h.Write(n[:])
	h.Write(stdin)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ProgramHash fingerprints a program by its IR disassembly.
func ProgramHash(p *ir.Program) string {
	sum := sha256.Sum256([]byte(p.String()))
	return hex.EncodeToString(sum[:])
}

// Replayable reports whether a program's tests can be replayed concretely:
// programs drawing on sym_* intrinsics have inputs the corpus format does
// not record and the interpreter cannot provide.
func Replayable(p *ir.Program) bool {
	for _, f := range p.Funcs {
		for i := range f.Instrs {
			switch f.Instrs[i].Op {
			case ir.OpSymInt, ir.OpSymByte, ir.OpSymBool, ir.OpMakeSymArr:
				return false
			}
		}
	}
	return true
}

// Writer streams generated tests into a corpus directory: each Add writes
// the test's file (deduplicated by input hash) immediately, Finalize writes
// the manifest. Add is safe for concurrent use — parallel exploration
// workers share one Writer.
type Writer struct {
	mu      sync.Mutex
	dir     string
	prog    *ir.Program
	info    ProgramInfo
	config  string
	seen    map[string]bool
	emitted int
	skipped int // non-replayable error tests, excluded silently
	err     error
}

// NewWriter prepares a corpus directory for prog. name labels the program
// in the manifest (tool name or source file); config is the canonical
// producing-configuration descriptor. The program must be replayable.
func NewWriter(dir string, prog *ir.Program, name, config string) (*Writer, error) {
	if !Replayable(prog) {
		return nil, fmt.Errorf("corpus: program %q uses sym_* intrinsics; its tests cannot be replayed concretely", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Writer{
		dir:    dir,
		prog:   prog,
		info:   ProgramInfo{Name: name, Hash: ProgramHash(prog), Locations: prog.NumLocations()},
		config: config,
		seen:   map[string]bool{},
	}, nil
}

// Add streams one test into the corpus: it computes the input's identity,
// drops duplicates, runs the instrumented interpreter once to record the
// input's covered-location set, and writes the test file. The expectations
// (output, exit, assert) must come from the engine's model evaluation.
// The first I/O or interpreter error sticks and is returned by Finalize.
// Only the identity claim holds the lock: the interpreter run and the file
// write proceed in parallel across workers (each id is claimed exactly
// once, and distinct ids write distinct files).
func (w *Writer) Add(args [][]byte, stdin, output []byte, exit int64, assertFailed bool, assertMsg string) {
	id := InputID(args, stdin)
	w.mu.Lock()
	w.emitted++
	if w.seen[id] || w.err != nil {
		w.mu.Unlock()
		return
	}
	w.seen[id] = true
	w.mu.Unlock()

	var err error
	res, ierr := ir.InterpWith(w.prog, args, stdin, ir.InterpOptions{Coverage: true})
	if ierr != nil {
		err = fmt.Errorf("corpus: interpreting test %s: %w", id, ierr)
	} else {
		t := &Test{
			Version:      FormatVersion,
			ID:           id,
			Args:         args,
			Stdin:        stdin,
			Output:       output,
			Exit:         exit,
			AssertFailed: assertFailed,
			AssertMsg:    assertMsg,
			Covered:      MaskToRanges(res.Covered),
		}
		err = writeJSON(filepath.Join(w.dir, id+".json"), t)
	}
	if err != nil {
		w.mu.Lock()
		if w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
	}
}

// SkipUnreplayable records a test the writer deliberately excludes (error
// tests whose failure is an engine analysis, not program semantics).
func (w *Writer) SkipUnreplayable() {
	w.mu.Lock()
	w.skipped++
	w.mu.Unlock()
}

// Counts reports tests received and duplicates dropped so far.
func (w *Writer) Counts() (emitted, deduped int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.emitted, w.emitted - len(w.seen)
}

// Finalize writes the manifest and returns it. symCovered is the symbolic
// run's coverage bitmap (Result.CoverageMask); completed its Completed flag.
func (w *Writer) Finalize(symCovered []bool, completed bool) (*Manifest, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil, w.err
	}
	ids := make([]string, 0, len(w.seen))
	for id := range w.seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	m := &Manifest{
		Schema:     Schema,
		Program:    w.info,
		Config:     w.config,
		Completed:  completed,
		Emitted:    w.emitted,
		Deduped:    w.emitted - len(ids),
		Skipped:    w.skipped,
		SymCovered: MaskToRanges(symCovered),
	}
	for _, id := range ids {
		m.Tests = append(m.Tests, Entry{ID: id, File: id + ".json"})
	}
	if err := writeJSON(filepath.Join(w.dir, ManifestName), m); err != nil {
		return nil, err
	}
	return m, nil
}

// MaskToRanges renders a coverage bitmap as a canonical sorted range list:
// maximal runs of set bits as "lo-hi" (or "lo" for singletons), joined by
// commas. "" is the empty set.
func MaskToRanges(mask []bool) string {
	var b strings.Builder
	i := 0
	for i < len(mask) {
		if !mask[i] {
			i++
			continue
		}
		j := i
		for j+1 < len(mask) && mask[j+1] {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if i == j {
			fmt.Fprintf(&b, "%d", i)
		} else {
			fmt.Fprintf(&b, "%d-%d", i, j)
		}
		i = j + 1
	}
	return b.String()
}

// RangesToMask parses a range list back into a bitmap over n locations.
func RangesToMask(s string, n int) ([]bool, error) {
	out := make([]bool, n)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(part, "-")
		if !ok {
			hi = lo
		}
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 0 || b < a || b >= n {
			return nil, fmt.Errorf("corpus: bad location range %q (program has %d locations)", part, n)
		}
		for i := a; i <= b; i++ {
			out[i] = true
		}
	}
	return out, nil
}

// writeJSON marshals v deterministically (indented, trailing newline) and
// writes it crash-safely: the bytes land in a sibling temp file first and
// are renamed into place, so a process killed at any instant leaves either
// the old file, the new file, or a stray .tmp — never torn JSON at the
// final path. ValidateDir cleans stray temp files up on resume.
func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	// The fault-injection point simulates the pre-crash-safety writer (or a
	// filesystem that tears on power loss): a truncated file at the FINAL
	// path, then death. The resume-time quarantine pass exists for exactly
	// this artifact.
	faultinject.HitWith(faultinject.PointCorpusWrite, func() {
		_ = os.WriteFile(path, data[:len(data)/2], 0o644)
	})
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
