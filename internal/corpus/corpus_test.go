package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symmerge/internal/ir"
	"symmerge/internal/lang"
)

const testProg = `void main() {
    byte c = argchar(1, 0);
    if (c == 'a') { putchar('A'); } else { putchar('B'); }
    halt(7);
}`

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// emit runs the interpreter to derive true expectations and adds the test —
// a stand-in for the engine's model evaluation in these unit tests.
func emit(t *testing.T, w *Writer, p *ir.Program, args [][]byte) {
	t.Helper()
	res, err := ir.Interp(p, args, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(args, nil, res.Output, res.Exit, res.AssertFailed, res.Msg)
}

func TestWriterRoundTrip(t *testing.T) {
	p := compile(t, testProg)
	dir := t.TempDir()
	w, err := NewWriter(dir, p, "unit", "merge=none")
	if err != nil {
		t.Fatal(err)
	}
	emit(t, w, p, [][]byte{[]byte("a")})
	emit(t, w, p, [][]byte{[]byte("b")})
	emit(t, w, p, [][]byte{[]byte("a")}) // duplicate
	man, err := w.Finalize(make([]bool, p.NumLocations()), true)
	if err != nil {
		t.Fatal(err)
	}
	if man.Emitted != 3 || man.Deduped != 1 || len(man.Tests) != 2 {
		t.Fatalf("manifest counts: emitted=%d deduped=%d tests=%d", man.Emitted, man.Deduped, len(man.Tests))
	}
	m2, tests, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Program.Hash != ProgramHash(p) || len(tests) != 2 {
		t.Fatalf("load: hash/tests mismatch")
	}
	for _, tc := range tests {
		if tc.Covered == "" {
			t.Fatalf("test %s has empty covered set", tc.ID)
		}
	}
}

func TestReplayDetectsDrift(t *testing.T) {
	p := compile(t, testProg)
	dir := t.TempDir()
	w, err := NewWriter(dir, p, "unit", "merge=none")
	if err != nil {
		t.Fatal(err)
	}
	emit(t, w, p, [][]byte{[]byte("a")})
	// A wrong expectation: the engine "predicted" output X for input b.
	w.Add([][]byte{[]byte("b")}, nil, []byte("X"), 7, false, "")
	if _, err := w.Finalize(make([]bool, p.NumLocations()), true); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 1 || rep.Mismatches[0].Field != "output" {
		t.Fatalf("want exactly one output mismatch, got %v", rep.Mismatches)
	}
}

func TestReplayRefusesWrongProgram(t *testing.T) {
	p := compile(t, testProg)
	dir := t.TempDir()
	w, err := NewWriter(dir, p, "unit", "")
	if err != nil {
		t.Fatal(err)
	}
	emit(t, w, p, [][]byte{[]byte("a")})
	if _, err := w.Finalize(make([]bool, p.NumLocations()), true); err != nil {
		t.Fatal(err)
	}
	other := compile(t, `void main() { putchar('z'); }`)
	if _, err := Replay(dir, other); err == nil || !strings.Contains(err.Error(), "generated from program") {
		t.Fatalf("want program-hash refusal, got %v", err)
	}
}

func TestLoadRejectsTamperedTest(t *testing.T) {
	p := compile(t, testProg)
	dir := t.TempDir()
	w, err := NewWriter(dir, p, "unit", "")
	if err != nil {
		t.Fatal(err)
	}
	emit(t, w, p, [][]byte{[]byte("a")})
	man, err := w.Finalize(make([]bool, p.NumLocations()), true)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the stored input: the recorded ID no longer matches.
	path := filepath.Join(dir, man.Tests[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"args": [`+"\n"+`    "YQ=="`, `"args": [`+"\n"+`    "Yg=="`, 1)
	if tampered == string(data) {
		t.Fatal("tamper replacement did not apply")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "identity mismatch") {
		t.Fatalf("want identity mismatch, got %v", err)
	}
}

// TestParityToleratesSkippedErrorTests: coverage reached only by skipped
// (non-replayable) error paths must not fail parity — but coverage outside
// the symbolic set still must.
func TestParityToleratesSkippedErrorTests(t *testing.T) {
	p := compile(t, testProg)
	dir := t.TempDir()
	w, err := NewWriter(dir, p, "unit", "")
	if err != nil {
		t.Fatal(err)
	}
	emit(t, w, p, [][]byte{[]byte("a")})
	w.SkipUnreplayable()
	// Symbolic set = everything the replay covers plus one extra location
	// (stands in for the skipped error path's coverage).
	res, err := ir.InterpWith(p, [][]byte{[]byte("a")}, nil, ir.InterpOptions{Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	sym := append([]bool(nil), res.Covered...)
	marked := false
	for i, c := range sym {
		if !c {
			sym[i] = true
			marked = true
			break
		}
	}
	if !marked {
		t.Fatal("test program has no uncovered location to mark")
	}
	if _, err := w.Finalize(sym, true); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MissingLocs) != 1 {
		t.Fatalf("want 1 missing location, got %d", len(rep.MissingLocs))
	}
	if !rep.ParityOK() {
		t.Fatal("parity should tolerate missing coverage when tests were skipped at emission")
	}
	rep.Manifest.Skipped = 0
	if rep.ParityOK() {
		t.Fatal("without skips the same gap must fail parity")
	}
}

func TestWriterRejectsSymbolicIntrinsics(t *testing.T) {
	p := compile(t, `void main() { int x = sym_int(); putchar(tobyte(x)); }`)
	if _, err := NewWriter(t.TempDir(), p, "unit", ""); err == nil {
		t.Fatal("want rejection of sym_* program")
	}
}

func TestDirDigestDetectsAnyByteChange(t *testing.T) {
	p := compile(t, testProg)
	dir := t.TempDir()
	w, _ := NewWriter(dir, p, "unit", "")
	emit(t, w, p, [][]byte{[]byte("a")})
	if _, err := w.Finalize(make([]bool, p.NumLocations()), true); err != nil {
		t.Fatal(err)
	}
	d1, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, append(data, ' '), 0o644)
	d2, err := DirDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("digest did not change after edit")
	}
}

func TestInputIDUnambiguous(t *testing.T) {
	// Length-prefixing must keep ["ab"] distinct from ["a","b"] and from
	// stdin carrying the same bytes.
	ids := map[string]string{}
	cases := []struct {
		name  string
		args  [][]byte
		stdin []byte
	}{
		{"one-arg", [][]byte{[]byte("ab")}, nil},
		{"two-args", [][]byte{[]byte("a"), []byte("b")}, nil},
		{"stdin", nil, []byte("ab")},
		{"arg+stdin", [][]byte{[]byte("a")}, []byte("b")},
		{"empty-args", [][]byte{nil, nil}, nil},
		{"nothing", nil, nil},
	}
	for _, c := range cases {
		id := InputID(c.args, c.stdin)
		if prev, dup := ids[id]; dup {
			t.Fatalf("collision between %s and %s", prev, c.name)
		}
		ids[id] = c.name
	}
}
