package corpus

import (
	"os"
	"path/filepath"
	"testing"
)

// seedCorpus writes a two-test corpus and returns the directory plus the two
// test IDs in emission order.
func seedCorpus(t *testing.T) (string, []string) {
	t.Helper()
	p := compile(t, testProg)
	dir := t.TempDir()
	w, err := NewWriter(dir, p, "unit", "merge=none")
	if err != nil {
		t.Fatal(err)
	}
	emit(t, w, p, [][]byte{[]byte("a")})
	emit(t, w, p, [][]byte{[]byte("b")})
	if _, err := w.Finalize(make([]bool, p.NumLocations()), true); err != nil {
		t.Fatal(err)
	}
	return dir, []string{InputID([][]byte{[]byte("a")}, nil), InputID([][]byte{[]byte("b")}, nil)}
}

func TestValidateDirCleanCorpus(t *testing.T) {
	dir, _ := seedCorpus(t)
	quarantined, err := ValidateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 {
		t.Fatalf("clean corpus quarantined %v", quarantined)
	}
	if q, err := ValidateDir(filepath.Join(dir, "no-such-subdir")); err != nil || q != nil {
		t.Fatalf("missing dir: got (%v, %v), want (nil, nil)", q, err)
	}
}

func TestValidateDirQuarantinesDamage(t *testing.T) {
	dir, ids := seedCorpus(t)

	// Tear the first test's file mid-JSON and leave a stray temp file, the
	// two artifacts an interruption can plausibly leave behind.
	torn := filepath.Join(dir, ids[0]+".json")
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ids[1]+".json.tmp")
	if err := os.WriteFile(tmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	quarantined, err := ValidateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 || quarantined[0] != ids[0] {
		t.Fatalf("quarantined %v, want [%s]", quarantined, ids[0])
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Error("torn file still present at its final path")
	}
	if _, err := os.Stat(torn + QuarantineSuffix); err != nil {
		t.Errorf("quarantine copy missing: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stray temp file survived validation")
	}
	// The intact test is untouched.
	if _, err := os.Stat(filepath.Join(dir, ids[1]+".json")); err != nil {
		t.Errorf("intact test damaged: %v", err)
	}
}

func TestValidateDirQuarantinesRenamedTest(t *testing.T) {
	dir, ids := seedCorpus(t)
	// A test stored under the wrong name claims an input it does not hold;
	// replay trust requires name == ID == InputID(content).
	src := filepath.Join(dir, ids[0]+".json")
	dst := filepath.Join(dir, "00deadbeef00deadbeef00deadbeef00.json")
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	quarantined, err := ValidateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 || quarantined[0] != "00deadbeef00deadbeef00deadbeef00" {
		t.Fatalf("quarantined %v, want the renamed id", quarantined)
	}
}

// TestWriterStateRoundTrip pins the snapshot/restore contract the resume
// path relies on: restoring a snapshot minus the quarantined IDs makes
// re-emission of quarantined tests possible while everything else dedups,
// so counters converge to the uninterrupted run's.
func TestWriterStateRoundTrip(t *testing.T) {
	p := compile(t, testProg)
	dir := t.TempDir()
	w, err := NewWriter(dir, p, "unit", "merge=none")
	if err != nil {
		t.Fatal(err)
	}
	emit(t, w, p, [][]byte{[]byte("a")})
	emit(t, w, p, [][]byte{[]byte("b")})
	seen, emitted, skipped := w.StateSnapshot()
	if len(seen) != 2 || emitted != 2 || skipped != 0 {
		t.Fatalf("snapshot: seen=%v emitted=%d skipped=%d", seen, emitted, skipped)
	}

	// A second writer on the same dir, restored minus one "quarantined" id:
	// the dropped test re-emits, the kept one dedups.
	idA := InputID([][]byte{[]byte("a")}, nil)
	w2, err := NewWriter(dir, p, "unit", "merge=none")
	if err != nil {
		t.Fatal(err)
	}
	w2.RestoreState(seen, emitted, skipped, []string{idA})
	emit(t, w2, p, [][]byte{[]byte("a")}) // regenerated
	emit(t, w2, p, [][]byte{[]byte("b")}) // dedups against restored state
	man, err := w2.Finalize(make([]bool, p.NumLocations()), true)
	if err != nil {
		t.Fatal(err)
	}
	// 2 from before the restore + 2 after = 4 emissions, 2 unique tests.
	if man.Emitted != 4 || man.Deduped != 2 || len(man.Tests) != 2 {
		t.Fatalf("manifest after restore: emitted=%d deduped=%d tests=%d",
			man.Emitted, man.Deduped, len(man.Tests))
	}
}
