package qce_test

// Benchmarks for the static analysis itself: the paper notes short runs are
// "dominated by the constant overhead of our static analysis" (§5.1), so
// the analysis cost per program is worth tracking.

import (
	"testing"

	"symmerge/internal/coreutils"
	"symmerge/internal/ir"
	"symmerge/internal/lang"
	"symmerge/internal/qce"
)

func BenchmarkAnalyzeEcho(b *testing.B) {
	p, err := lang.Compile(echoSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qce.Analyze(p, qce.DefaultParams())
	}
}

// BenchmarkAnalyzeAllCoreutils runs QCE over the whole model suite — the
// one-time pre-processing cost a symbolic-execution session pays before the
// first path executes.
func BenchmarkAnalyzeAllCoreutils(b *testing.B) {
	var progs []*ir.Program
	for _, tool := range coreutils.All() {
		p, err := lang.Compile(tool.Source)
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			qce.Analyze(p, qce.DefaultParams())
		}
	}
}
