// Package qce implements Query Count Estimation (paper §3): a lightweight
// static analysis, run before symbolic execution, that estimates for every
// program location ℓ
//
//   - Qt(ℓ): the expected number of future solver queries after ℓ, and
//   - Qadd(ℓ,v): the number of *additional* queries that would appear after ℓ
//     if variable v held a symbolic (or divergent concrete) value,
//
// using the recursion q(ℓ,c) of the paper's Equation (3)/(6): every branch
// contributes its own cost c(ℓ,e) plus β times each successor's count, with
// loops unrolled κ times.
//
// The engine uses these tables to build the similarity relation ∼qce of
// Equation (1): two states at ℓ may merge iff every "hot" variable — one
// with Qadd(ℓ,v) > α·Qt(ℓ) — is either equal in both states or already
// symbolic in one of them (Equation 2). Following the paper's prototype,
// the Qite term of the full cost model (§3.3) is dropped by default; an
// option restores it for the ablation benchmarks.
//
// Interprocedurally, per-function local counts are computed bottom-up over
// the call graph (recursion cut by κ); the engine adds the local counts of
// the return locations on the call stack at run time to obtain global
// counts (paper §3.2, "Interprocedural QCE").
package qce

import (
	"fmt"
	"strings"

	"symmerge/internal/cfg"
	"symmerge/internal/ir"
)

// Params are the QCE tuning knobs (paper §3.2/§5.4).
type Params struct {
	Alpha float64 // hot-variable threshold; the paper's tuned value is 1e-12
	Beta  float64 // branch feasibility probability; paper uses 0.8
	Kappa int     // loop unroll bound for unknown trip counts; paper uses 10
	// Zeta weights queries that gain ite expressions (the full variant of
	// §3.3). The prototype variant — and our default — ignores it
	// (Zeta = 1 disables the term).
	Zeta float64
}

// DefaultParams returns the default parameter values: β and κ as published
// (0.8 and 10), and α = 0.5 from the paper's worked example (§3.2).
//
// The paper's production tuning α = 1e-12 effectively marks every variable
// with any nonzero Qadd as hot; it behaved selectively in their prototype
// only because the LLVM-based analysis tracked few in-memory variables
// (§5.1). Our dependence analysis sees every local precisely, so the
// worked-example threshold reproduces the intended merge selectivity (e.g.
// H(7) = {arg} for the echo example, allowing the r-differing states to
// merge). Figure 7's benchmark sweeps α across the full range either way.
func DefaultParams() Params {
	return Params{Alpha: 0.5, Beta: 0.8, Kappa: 10, Zeta: 1}
}

// FuncQCE holds the per-location query-count tables of one function.
type FuncQCE struct {
	Fn *ir.Func
	// Qt[pc] is the local total query-count estimate at pc, already
	// scaled by the paper's ϕ (folded into α).
	Qt []float64
	// Qadd[pc][local] is the local additional-query estimate for making
	// the given local divergent at pc.
	Qadd [][]float64
	// EntryQt and EntryQadd summarize the function for callers: the
	// counts at the entry location (EntryQadd indexed by parameter).
	EntryQt   float64
	EntryQadd []float64
	// Reach[v] is the flow-insensitive forward dependence closure: the
	// set of locals whose value may be influenced by local v.
	Reach []map[int]bool
}

// Analysis is the whole-program QCE result.
type Analysis struct {
	Params  Params
	Prog    *ir.Program
	PerFunc []*FuncQCE
	CFGs    []*cfg.FuncCFG
	CG      *cfg.CallGraph
}

// Analyze runs QCE over the program.
func Analyze(p *ir.Program, params Params) *Analysis {
	if params.Beta <= 0 || params.Beta >= 1 {
		params.Beta = 0.8
	}
	if params.Kappa <= 0 {
		params.Kappa = 10
	}
	if params.Zeta < 1 {
		params.Zeta = 1
	}
	a := &Analysis{
		Params:  params,
		Prog:    p,
		PerFunc: make([]*FuncQCE, len(p.Funcs)),
		CFGs:    make([]*cfg.FuncCFG, len(p.Funcs)),
		CG:      cfg.BuildCallGraph(p),
	}
	for i, f := range p.Funcs {
		a.CFGs[i] = cfg.Build(f)
	}
	// Bottom-up over the call graph so callee summaries exist at call
	// sites. Recursive cycles fall back to zero summaries on first use
	// (equivalent to cutting recursion at depth 0 beyond κ-unrolled
	// self-loops), matching the "bounded recursion" note in §5.1.
	for _, fi := range a.CG.BottomUp {
		a.PerFunc[fi] = a.analyzeFunc(fi)
	}
	return a
}

// analyzeFunc computes the per-location tables for one function.
func (a *Analysis) analyzeFunc(fi int) *FuncQCE {
	fn := a.Prog.Funcs[fi]
	g := a.CFGs[fi]
	n := len(fn.Instrs)
	nl := len(fn.Locals)
	fq := &FuncQCE{
		Fn:   fn,
		Qt:   make([]float64, n+1),
		Qadd: make([][]float64, n+1),
	}
	for pc := range fq.Qadd {
		fq.Qadd[pc] = make([]float64, nl)
	}
	if n == 0 {
		fq.EntryQadd = make([]float64, fn.Params)
		return fq
	}

	fq.Reach = dependenceClosure(fn)

	// Per-instruction cost selectors.
	//
	// costTotal[pc] is the c(ℓ,e)=1 contribution to Qt: any instruction
	// that can issue a solver query when its inputs are symbolic —
	// branches, asserts, and symbolic-index accesses (paper footnote 1).
	//
	// costVar[pc] is the set of locals v for which this instruction
	// contributes to Qadd(·,v): the instruction queries an expression
	// that may depend on v's current value.
	costTotal := make([]float64, n)
	costVar := make([][]int, n)
	for pc := 0; pc < n; pc++ {
		in := &fn.Instrs[pc]
		var queryOperands []ir.Operand
		switch in.Op {
		case ir.OpCondBr:
			queryOperands = []ir.Operand{in.A}
		case ir.OpAssert:
			queryOperands = []ir.Operand{in.A}
		case ir.OpLoad:
			// Symbolic index => expensive ite-expansion + queries.
			queryOperands = []ir.Operand{in.B}
		case ir.OpStore:
			queryOperands = []ir.Operand{in.A}
		case ir.OpPtrLoad, ir.OpPtrStore:
			// Symbolic address => guarded-select expansion over every
			// heap object + queries; the pointer operand is the source
			// of divergence, and through the dependence closure it makes
			// the locals feeding it (and the heap cells proxied by the
			// pointer, see dependenceClosure) hot.
			queryOperands = []ir.Operand{in.A}
		case ir.OpArgChar:
			queryOperands = []ir.Operand{in.A, in.B}
		case ir.OpStdin:
			queryOperands = []ir.Operand{in.A}
		default:
			continue
		}
		costTotal[pc] = 1
		seen := map[int]bool{}
		for _, o := range queryOperands {
			if o.IsConst {
				continue
			}
			for v := 0; v < nl; v++ {
				if !seen[v] && fq.Reach[v][o.Local] {
					seen[v] = true
					costVar[pc] = append(costVar[pc], v)
				}
			}
		}
	}

	// Backward data-flow, Gauss–Seidel in reverse postorder, κ passes:
	// pass k propagates counts across up to k back-edge hops, realizing
	// the paper's κ-bounded loop unrolling. A statically known trip
	// count below κ is honored by damping that loop's header after its
	// trip count is reached (approximation: we run min(trip, κ) passes
	// per loop by freezing headers of exhausted loops).
	beta := a.Params.Beta
	order := instrBackwardOrder(g)
	passes := a.Params.Kappa
	loopBound := make([]int, len(g.Loops))
	for li, l := range g.Loops {
		loopBound[li] = passes
		if l.TripCount > 0 && l.TripCount < passes {
			loopBound[li] = l.TripCount
		}
	}

	update := func(pass int) {
		for _, pc := range order {
			in := &fn.Instrs[pc]
			// Freeze headers of loops whose bound is exhausted so
			// extra passes do not keep growing them.
			if li := loopIndexOfHeader(g, pc); li >= 0 && pass >= loopBound[li] {
				continue
			}
			switch in.Op {
			case ir.OpCondBr:
				fq.Qt[pc] = beta*fq.Qt[in.Target] + beta*fq.Qt[in.FTarget] + costTotal[pc]
				dst := fq.Qadd[pc]
				t1, t2 := fq.Qadd[in.Target], fq.Qadd[in.FTarget]
				for v := 0; v < nl; v++ {
					dst[v] = beta * (t1[v] + t2[v])
				}
				for _, v := range costVar[pc] {
					dst[v]++
				}
			case ir.OpBr:
				fq.Qt[pc] = fq.Qt[in.Target]
				copy(fq.Qadd[pc], fq.Qadd[in.Target])
			case ir.OpRet, ir.OpHalt:
				fq.Qt[pc] = 0
				zero(fq.Qadd[pc])
			case ir.OpCall:
				callee := a.PerFunc[in.Callee]
				fq.Qt[pc] = fq.Qt[pc+1]
				copy(fq.Qadd[pc], fq.Qadd[pc+1])
				if callee != nil {
					fq.Qt[pc] += callee.EntryQt
					// Map callee parameter counts back to
					// caller variables feeding those args.
					for i, arg := range in.Args {
						if arg.IsConst || i >= len(callee.EntryQadd) {
							continue
						}
						add := callee.EntryQadd[i]
						if add == 0 {
							continue
						}
						for v := 0; v < nl; v++ {
							if fq.Reach[v][arg.Local] {
								fq.Qadd[pc][v] += add
							}
						}
					}
				}
			default:
				fq.Qt[pc] = fq.Qt[pc+1] + costTotal[pc]
				copy(fq.Qadd[pc], fq.Qadd[pc+1])
				for _, v := range costVar[pc] {
					fq.Qadd[pc][v]++
				}
			}
		}
	}
	for pass := 0; pass < passes; pass++ {
		update(pass)
	}

	// Mask Qadd with liveness: a variable that is dead at ℓ cannot make
	// future queries more expensive through its value at ℓ (see
	// liveness.go for why our non-SSA IR needs this explicitly).
	live := liveness(fn, g)
	for pc := 0; pc < n; pc++ {
		for v := 0; v < nl; v++ {
			if !live[pc][v] {
				fq.Qadd[pc][v] = 0
			}
		}
	}

	fq.EntryQt = fq.Qt[0]
	fq.EntryQadd = make([]float64, fn.Params)
	for i := 0; i < fn.Params; i++ {
		fq.EntryQadd[i] = fq.Qadd[0][i]
	}
	return fq
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// loopIndexOfHeader returns the loop whose header block starts at pc, or -1.
func loopIndexOfHeader(g *cfg.FuncCFG, pc int) int {
	if len(g.Blocks) == 0 {
		return -1
	}
	b := g.BlockOf[pc]
	for li, l := range g.Loops {
		if l.Header == b && g.Blocks[b].Start == pc {
			return li
		}
	}
	return -1
}

// instrBackwardOrder returns instruction PCs such that processing them in
// order propagates backward flow along forward edges in one pass: blocks in
// reverse RPO, instructions within a block from last to first.
func instrBackwardOrder(g *cfg.FuncCFG) []int {
	var out []int
	for i := len(g.RPO) - 1; i >= 0; i-- {
		b := g.Blocks[g.RPO[i]]
		for pc := b.End - 1; pc >= b.Start; pc-- {
			out = append(out, pc)
		}
	}
	return out
}

// dependenceClosure computes, flow-insensitively, for each local v the set
// of locals whose value may be derived from v (paper: "path-insensitive
// data dependence analysis"; our IR plays the role of LLVM's SSA form).
func dependenceClosure(fn *ir.Func) []map[int]bool {
	nl := len(fn.Locals)
	// Direct edges: src -> dst for every def.
	succ := make([][]int, nl)
	addEdge := func(src ir.Operand, dst int) {
		if src.IsConst || dst < 0 {
			return
		}
		succ[src.Local] = append(succ[src.Local], dst)
	}
	for pc := range fn.Instrs {
		in := &fn.Instrs[pc]
		switch in.Op {
		case ir.OpLoad:
			addEdge(in.A, in.Dst) // array contents flow to dst
			addEdge(in.B, in.Dst) // index influences the value read
		case ir.OpStore:
			// Value and index flow into the array variable.
			addEdge(in.A, in.Dst)
			addEdge(in.B, in.Dst)
		case ir.OpAlloc:
			addEdge(in.A, in.Dst) // size influences the address space
		case ir.OpPtrLoad:
			// The pointer local proxies its heap object: contents and
			// address both flow to the destination.
			addEdge(in.A, in.Dst)
		case ir.OpPtrStore:
			// The stored value flows into the heap reached through the
			// pointer; the pointer local proxies that object, mirroring
			// how OpStore folds array contents into the array local.
			// (The address operand is usually a per-statement temp; the
			// pointer alias clusters below carry the flow onward to the
			// named pointer local and from there into future loads.)
			if !in.A.IsConst {
				addEdge(in.B, in.A.Local)
			}
		case ir.OpCall:
			// Array arguments are passed by reference: the callee
			// may both read and write them. Conservatively link
			// scalar args to nothing here (handled by summaries)
			// and array args to themselves via the return value.
			if in.Dst >= 0 {
				for _, arg := range in.Args {
					addEdge(arg, in.Dst)
				}
			}
		case ir.OpCondBr, ir.OpBr, ir.OpRet, ir.OpHalt,
			ir.OpAssert, ir.OpAssume, ir.OpOut:
			// No dataflow def.
		case ir.OpArgc, ir.OpStdinLen, ir.OpSymInt, ir.OpSymByte,
			ir.OpSymBool, ir.OpMakeSymArr, ir.OpNop:
			// Defines from the environment; no local operand flows in
			// (the zero-valued A/B operands are not real reads).
		case ir.OpArgChar:
			addEdge(in.A, in.Dst)
			addEdge(in.B, in.Dst)
		case ir.OpStdin:
			addEdge(in.A, in.Dst)
		case ir.OpMov, ir.OpNot, ir.OpNeg, ir.OpBNot,
			ir.OpIntToByte, ir.OpByteToInt, ir.OpBoolToInt:
			// Unary: the zero-valued B operand is not a real read.
			addEdge(in.A, in.Dst)
		default:
			if in.Dst >= 0 {
				addEdge(in.A, in.Dst)
				addEdge(in.B, in.Dst)
			}
		}
	}
	// Pointer locals form alias clusters: a derived pointer (q = p + i, or
	// the address temp the compiler emits for p[i]) addresses the same heap
	// object as its base, so dependence flows both ways between them — the
	// forward def edge above plus this reverse edge. Without the reverse
	// edge, an OpPtrStore's value lands on the address temp and stops
	// there; with it, the value reaches the named pointer local and, from
	// there, every future load through that pointer.
	for pc := range fn.Instrs {
		in := &fn.Instrs[pc]
		if in.Dst < 0 || fn.Locals[in.Dst].Type.Kind != ir.Ptr {
			continue
		}
		switch in.Op {
		case ir.OpAdd, ir.OpSub:
			for _, o := range []ir.Operand{in.A, in.B} {
				if !o.IsConst && fn.Locals[o.Local].Type.Kind == ir.Ptr {
					addEdge(ir.LocalOp(in.Dst), o.Local)
				}
			}
		case ir.OpMov:
			if !in.A.IsConst && fn.Locals[in.A.Local].Type.Kind == ir.Ptr {
				addEdge(ir.LocalOp(in.Dst), in.A.Local)
			}
		}
	}

	// Reflexive-transitive closure via BFS from each local.
	reach := make([]map[int]bool, nl)
	for v := 0; v < nl; v++ {
		r := map[int]bool{v: true}
		stack := []int{v}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range succ[x] {
				if !r[y] {
					r[y] = true
					stack = append(stack, y)
				}
			}
		}
		reach[v] = r
	}
	return reach
}

// HotSet returns the indices of the locals that are hot at pc given the
// global total query count (local Qt at pc plus the stack contribution the
// engine supplies). Equation (2): v is hot iff Qadd(pc,v) > α·Qt_global.
func (fq *FuncQCE) HotSet(pc int, globalQt float64, alpha float64, out []int) []int {
	out = out[:0]
	threshold := alpha * globalQt
	for v, q := range fq.Qadd[pc] {
		if q > threshold {
			out = append(out, v)
		}
	}
	return out
}

// QtAt returns the local query-count estimate Qt at pc, clamping a PC past
// the function end (a return location, where the PC already points beyond
// the call) to the last instruction. Zero for a function with no table.
func (fq *FuncQCE) QtAt(pc int) float64 {
	if len(fq.Qt) == 0 {
		return 0
	}
	if pc >= len(fq.Qt) {
		pc = len(fq.Qt) - 1
	}
	if pc < 0 {
		pc = 0
	}
	return fq.Qt[pc]
}

// EntryQueries returns the query-count estimate for one full exploration
// of fn from its entry (the interprocedural EntryQt computed bottom-up
// over the call graph). The summary machinery uses it as a selectivity
// refinement: a callee estimated to trigger no queries gains little from
// being discharged out of a cache, so such call sites stay inline unless
// the static heuristic already judged them worthwhile. Zero for an
// unanalyzed function.
func (a *Analysis) EntryQueries(fn int) float64 {
	if fn < 0 || fn >= len(a.PerFunc) || a.PerFunc[fn] == nil {
		return 0
	}
	return a.PerFunc[fn].EntryQt
}

// Threshold is the merge-gate cutoff α·Qt_global of Equation (2) — the
// value a variable's Qadd (or, in the ζ variant, Equation (7)'s aggregate
// cost term) must stay below for a merge to be accepted. The observability
// layer records it alongside each merge decision so traces show the
// estimate that decided the gate.
func (p Params) Threshold(globalQt float64) float64 {
	return p.Alpha * globalQt
}

// String renders the per-location tables for debugging and the qcedump tool.
func (fq *FuncQCE) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qce %s:\n", fq.Fn.Name)
	for pc := 0; pc < len(fq.Fn.Instrs); pc++ {
		fmt.Fprintf(&b, "  %3d: Qt=%-8.3f", pc, fq.Qt[pc])
		for v, q := range fq.Qadd[pc] {
			if q > 0 {
				fmt.Fprintf(&b, " %s=%.3f", fq.Fn.Locals[v].Name, q)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
