package qce

import (
	"symmerge/internal/analysis"
	"symmerge/internal/cfg"
	"symmerge/internal/ir"
)

// liveness is the shared backward may-liveness analysis from
// internal/analysis: live[pc][v] is true when v's value at pc may still be
// read before being overwritten.
//
// QCE multiplies Qadd by liveness: a dead variable cannot influence any
// future query through its *current* value, even if the same register is
// reused later (our IR is not SSA, so without this mask a reinitialized
// loop counter would keep its stale dependence — LLVM's SSA form gives the
// paper's implementation the distinction for free). Note that this is
// strictly weaker than the liveness-based pruning of Boonstoppel et al.
// [3], which the paper §6 compares against: QCE still merges live variables
// whose future query count is below the α threshold.
//
// The shared analysis also kills arrays before loops that provably
// overwrite them in full (see analysis.Liveness), so a to-be-initialized
// buffer no longer counts toward pre-loop hot sets.
func liveness(fn *ir.Func, g *cfg.FuncCFG) [][]bool {
	return analysis.Liveness(fn, g)
}
