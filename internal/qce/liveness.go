package qce

import (
	"symmerge/internal/cfg"
	"symmerge/internal/ir"
)

// liveness computes per-location may-liveness of scalar locals: live[pc][v]
// is true when v's value at pc may still be read before being overwritten.
//
// QCE multiplies Qadd by liveness: a dead variable cannot influence any
// future query through its *current* value, even if the same register is
// reused later (our IR is not SSA, so without this mask a reinitialized
// loop counter would keep its stale dependence — LLVM's SSA form gives the
// paper's implementation the distinction for free). Note that this is
// strictly weaker than the liveness-based pruning of Boonstoppel et al.
// [3], which the paper §6 compares against: QCE still merges live variables
// whose future query count is below the α threshold.
//
// Array locals are never killed (stores are partial defs), so they stay
// live from first touch backwards — conservative and safe.
func liveness(fn *ir.Func, g *cfg.FuncCFG) [][]bool {
	n := len(fn.Instrs)
	nl := len(fn.Locals)
	live := make([][]bool, n+1)
	for i := range live {
		live[i] = make([]bool, nl)
	}
	if n == 0 {
		return live
	}

	use := make([][]int, n)
	def := make([]int, n) // killed local, -1 if none
	addUse := func(pc int, o ir.Operand) {
		if !o.IsConst {
			use[pc] = append(use[pc], o.Local)
		}
	}
	for pc := 0; pc < n; pc++ {
		in := &fn.Instrs[pc]
		def[pc] = -1
		switch in.Op {
		case ir.OpBr, ir.OpNop:
		case ir.OpCondBr, ir.OpAssert, ir.OpAssume, ir.OpOut:
			addUse(pc, in.A)
		case ir.OpRet, ir.OpHalt:
			if in.HasVal {
				addUse(pc, in.A)
			}
		case ir.OpArgc, ir.OpStdinLen, ir.OpSymInt, ir.OpSymByte, ir.OpSymBool:
			def[pc] = in.Dst
		case ir.OpStdin:
			addUse(pc, in.A)
			def[pc] = in.Dst
		case ir.OpArgChar:
			addUse(pc, in.A)
			addUse(pc, in.B)
			def[pc] = in.Dst
		case ir.OpLoad:
			addUse(pc, in.A)
			addUse(pc, in.B)
			def[pc] = in.Dst
		case ir.OpStore:
			// Partial def: the array stays live; index and value read.
			use[pc] = append(use[pc], in.Dst)
			addUse(pc, in.A)
			addUse(pc, in.B)
		case ir.OpAlloc:
			addUse(pc, in.A)
			def[pc] = in.Dst
		case ir.OpPtrLoad:
			addUse(pc, in.A)
			def[pc] = in.Dst
		case ir.OpPtrStore:
			// Partial def of the pointed-to object (proxied by the
			// pointer local, which the address read keeps live anyway).
			addUse(pc, in.A)
			addUse(pc, in.B)
		case ir.OpCall:
			for _, a := range in.Args {
				addUse(pc, a)
			}
			if in.Dst >= 0 {
				def[pc] = in.Dst
			}
		case ir.OpMakeSymArr:
			// Overwrites the whole array: kill (and no use).
			if !in.A.IsConst {
				def[pc] = in.A.Local
			}
		case ir.OpMov, ir.OpNot, ir.OpNeg, ir.OpBNot,
			ir.OpIntToByte, ir.OpByteToInt, ir.OpBoolToInt:
			// Unary: B is not a real operand.
			addUse(pc, in.A)
			def[pc] = in.Dst
		default: // binary value ops
			addUse(pc, in.A)
			addUse(pc, in.B)
			def[pc] = in.Dst
		}
	}

	// Backward fixpoint; iterate blocks in reverse RPO until stable.
	var succ []int
	changed := true
	for changed {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.Blocks[g.RPO[i]]
			for pc := b.End - 1; pc >= b.Start; pc-- {
				in := &fn.Instrs[pc]
				out := live[pc+1]
				if in.IsTerminator() {
					succ = in.Successors(pc, succ[:0])
					tmp := make([]bool, nl)
					for _, s := range succ {
						if s <= n {
							for v, lv := range live[s] {
								if lv {
									tmp[v] = true
								}
							}
						}
					}
					out = tmp
				}
				for v := 0; v < nl; v++ {
					nv := out[v] && def[pc] != v
					if !nv {
						for _, u := range use[pc] {
							if u == v {
								nv = true
								break
							}
						}
					}
					if nv != live[pc][v] {
						live[pc][v] = nv
						changed = true
					}
				}
			}
		}
	}
	return live
}
