package qce_test

import (
	"testing"

	"symmerge/internal/ir"
	"symmerge/internal/lang"
	"symmerge/internal/qce"
)

// echoSrc is the paper's Figure 1 running example.
const echoSrc = `
void main() {
    int r = 1;
    int arg = 1;
    if (arg < argc()) {
        if (argchar(arg, 0) == '-' && argchar(arg, 1) == 'n' && argchar(arg, 2) == 0) {
            r = 0;
            arg++;
        }
    }
    for (; arg < argc(); arg++) {
        for (int i = 0; argchar(arg, i) != 0; i++) {
            putchar(argchar(arg, i));
        }
    }
    if (r != 0) {
        putchar('\n');
    }
}
`

func analyze(t *testing.T, src string, params qce.Params) (*ir.Program, *qce.Analysis) {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p, qce.Analyze(p, params)
}

func localIndex(fn *ir.Func, name string) int {
	for i, l := range fn.Locals {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// outerLoopHeader finds the PC of the outer for-loop condition: the first
// OpArgc after the if-block (the paper's line 7).
func outerLoopHeader(fn *ir.Func) int {
	count := 0
	for pc, in := range fn.Instrs {
		if in.Op == ir.OpArgc {
			count++
			if count == 2 {
				return pc
			}
		}
	}
	return -1
}

// TestEchoWorkedExample pins the paper's §3.2 example: at the outer loop
// header, arg is hot and r is not (α = 0.5).
func TestEchoWorkedExample(t *testing.T) {
	p, a := analyze(t, echoSrc, qce.DefaultParams())
	fq := a.PerFunc[p.Main.Index]
	pc := outerLoopHeader(p.Main)
	if pc < 0 {
		t.Fatal("could not locate outer loop header")
	}
	r := localIndex(p.Main, "r")
	arg := localIndex(p.Main, "arg")
	qt := fq.Qt[pc]
	if qt <= 0 {
		t.Fatalf("Qt at header is %f", qt)
	}
	if got := fq.Qadd[pc][arg]; got <= 0.5*qt {
		t.Fatalf("Qadd(arg)=%f should exceed α·Qt=%f: arg must be hot", got, 0.5*qt)
	}
	if got := fq.Qadd[pc][r]; got > 0.5*qt {
		t.Fatalf("Qadd(r)=%f should not exceed α·Qt=%f: r must be cold", got, 0.5*qt)
	}
	// Hot set at the header must therefore contain arg but not r.
	hot := fq.HotSet(pc, qt, 0.5, nil)
	hasArg, hasR := false, false
	for _, v := range hot {
		if v == arg {
			hasArg = true
		}
		if v == r {
			hasR = true
		}
	}
	if !hasArg || hasR {
		t.Fatalf("hot set %v: want arg in, r out", hot)
	}
}

// TestPaperWorkedExampleNumbers reproduces the paper's §3.2 computation
// exactly: with α=0.5, β=0.6, κ=1 it derives Qadd(7,arg) = β+1 = 1.6,
// Qadd(7,r) = β+2β² = 1.32, Qt(7) = 1+2β+2β² = 2.92, and H(7) = {arg}.
//
// The paper's numbers assume the κ=1-unrolled CFG with exactly three query
// sites (the branch conditions of lines 7, 8 and 10 of Figure 1) and loop
// exits falling through to line 10. The program below is that CFG written
// out: the loops of echo unrolled once, argv[arg][i] stood in by an
// arithmetic condition so no extra query sites (symbolic-index reads) enter
// the count. Line numbers map as: L7 = the outer-loop condition, L8 = the
// inner-loop condition, L9 = the loop body, L10 = the final check of r.
func TestPaperWorkedExampleNumbers(t *testing.T) {
	src := `
void main() {
    int r = 1;
    int arg = 1;
    int i = 0;
    int n = sym_int();
    if (arg < n) {             // L7: query site, depends on arg
        if (arg + i != 0) {    // L8: query site, depends on arg (and i)
            putchar('x');      // L9: body, no query
            i++;
        }
    }
    if (r != 0) {              // L10: query site, depends on r
        putchar('\n');
    }
}
`
	p, a := analyze(t, src, qce.Params{Alpha: 0.5, Beta: 0.6, Kappa: 1, Zeta: 1})
	fq := a.PerFunc[p.Main.Index]
	// Location 7 is the first compare of the L7 condition; every
	// straight-line instruction before the branch carries the same counts.
	l7 := -1
	for pc := range p.Main.Instrs {
		if p.Main.Instrs[pc].Op == ir.OpLt {
			l7 = pc
			break
		}
	}
	if l7 < 0 {
		t.Fatal("L7 compare not found")
	}
	r := localIndex(p.Main, "r")
	arg := localIndex(p.Main, "arg")

	const eps = 1e-9
	if got, want := fq.Qt[l7], 2.92; got < want-eps || got > want+eps {
		t.Errorf("Qt(7) = %v, paper says %v", got, want)
	}
	if got, want := fq.Qadd[l7][arg], 1.6; got < want-eps || got > want+eps {
		t.Errorf("Qadd(7,arg) = %v, paper says %v", got, want)
	}
	if got, want := fq.Qadd[l7][r], 1.32; got < want-eps || got > want+eps {
		t.Errorf("Qadd(7,r) = %v, paper says %v", got, want)
	}
	// Equation (2) with α=0.5: H(7) = {arg} (1.6 > 1.46; 1.32 ≤ 1.46).
	hot := fq.HotSet(l7, fq.Qt[l7], 0.5, nil)
	if len(hot) != 1 || hot[0] != arg {
		names := make([]string, len(hot))
		for i, v := range hot {
			names[i] = p.Main.Locals[v].Name
		}
		t.Errorf("H(7) = %v, paper says {arg}", names)
	}
}

// TestQaddBoundedByQt: by construction every per-variable count selects a
// subset of the query sites counted by Qt, so Qadd(ℓ,v) ≤ Qt(ℓ).
func TestQaddBoundedByQt(t *testing.T) {
	p, a := analyze(t, echoSrc, qce.DefaultParams())
	for fi := range p.Funcs {
		fq := a.PerFunc[fi]
		for pc := range fq.Qadd {
			for v, q := range fq.Qadd[pc] {
				if q > fq.Qt[pc]+1e-9 {
					t.Fatalf("f%d pc %d: Qadd(%s)=%f > Qt=%f",
						fi, pc, p.Funcs[fi].Locals[v].Name, q, fq.Qt[pc])
				}
			}
		}
	}
}

// TestHotSetMonotoneInAlpha: growing α can only shrink the hot set.
func TestHotSetMonotoneInAlpha(t *testing.T) {
	p, a := analyze(t, echoSrc, qce.DefaultParams())
	fq := a.PerFunc[p.Main.Index]
	for pc := 0; pc < len(p.Main.Instrs); pc++ {
		prev := len(fq.HotSet(pc, fq.Qt[pc], 0.01, nil))
		for _, alpha := range []float64{0.1, 0.5, 1, 10} {
			cur := len(fq.HotSet(pc, fq.Qt[pc], alpha, nil))
			if cur > prev {
				t.Fatalf("pc %d: hot set grew from %d to %d when α increased", pc, prev, cur)
			}
			prev = cur
		}
	}
}

// TestDeadVariableNotHot: a variable overwritten before any further use has
// Qadd = 0 (liveness mask), even though the same register feeds later
// branches after reinitialization.
func TestDeadVariableNotHot(t *testing.T) {
	src := `
void main() {
    int i = sym_int();
    if (i > 0) { putchar('p'); }   // i used here
    i = 0;                          // i dead right before this
    for (; i < 3; i++) {
        putchar('x');
    }
}
`
	p, a := analyze(t, src, qce.DefaultParams())
	fq := a.PerFunc[p.Main.Index]
	i := localIndex(p.Main, "i")
	// Find the reinitialization instruction (mov i <- 0 outside the decl).
	reinit := -1
	for pc := 1; pc < len(p.Main.Instrs); pc++ {
		in := &p.Main.Instrs[pc]
		if in.Op == ir.OpMov && in.Dst == i && in.A.IsConst && in.A.Const == 0 {
			reinit = pc
		}
	}
	if reinit < 0 {
		t.Fatal("reinitialization not found")
	}
	if q := fq.Qadd[reinit][i]; q != 0 {
		t.Fatalf("Qadd(i)=%f at its kill point, want 0 (dead)", q)
	}
	// Right after its initial definition (the mov from the sym_int
	// temporary), i is live: it feeds the first branch.
	def := -1
	for pc := range p.Main.Instrs {
		in := &p.Main.Instrs[pc]
		if in.Op == ir.OpMov && in.Dst == i && !in.A.IsConst {
			def = pc
			break
		}
	}
	if def < 0 {
		t.Fatal("initial definition of i not found")
	}
	if q := fq.Qadd[def+1][i]; q <= 0 {
		t.Fatalf("Qadd(i)=%f after definition, want > 0 (live, feeds branch)", q)
	}
}

// TestInterproceduralSummaries: a callee that branches on its parameter
// propagates query counts to the caller's argument variable.
func TestInterproceduralSummaries(t *testing.T) {
	src := `
int classify(int v) {
    if (v < 0) { return 0 - 1; }
    if (v == 0) { return 0; }
    return 1;
}
void main() {
    int x = sym_int();
    int c = classify(x);
    putchar(tobyte('0' + c + 1));
}
`
	p, a := analyze(t, src, qce.DefaultParams())
	classify := p.ByName["classify"]
	cq := a.PerFunc[classify.Index]
	if cq.EntryQadd[0] <= 0 {
		t.Fatalf("classify's parameter summary is %f, want > 0", cq.EntryQadd[0])
	}
	// In main, x must inherit the callee's counts right after it is
	// defined (it is dead before its definition).
	mq := a.PerFunc[p.Main.Index]
	x := localIndex(p.Main, "x")
	def := -1
	for pc := range p.Main.Instrs {
		in := &p.Main.Instrs[pc]
		if in.Op == ir.OpMov && in.Dst == x && !in.A.IsConst {
			def = pc
			break
		}
	}
	if def < 0 {
		t.Fatal("initial definition of x not found")
	}
	if q := mq.Qadd[def+1][x]; q <= 0 {
		t.Fatalf("Qadd(x)=%f after definition, want > 0 via callee summary", q)
	}
}

// TestKappaBoundsLoopContribution: a longer unroll bound must not decrease
// counts, and must strictly increase them for an unbounded loop.
func TestKappaBoundsLoopContribution(t *testing.T) {
	src := `
void main() {
    int n = sym_int();
    int i = 0;
    while (i < n) {
        putchar('x');
        i++;
    }
}
`
	params := qce.DefaultParams()
	params.Kappa = 2
	p1, a1 := analyze(t, src, params)
	params.Kappa = 10
	_, a2 := analyze(t, src, params)
	q1 := a1.PerFunc[p1.Main.Index].Qt[0]
	q2 := a2.PerFunc[p1.Main.Index].Qt[0]
	if q2 <= q1 {
		t.Fatalf("Qt with κ=10 (%f) not greater than κ=2 (%f)", q2, q1)
	}
}

// TestKnownTripCountCapsUnrolling: a statically counted loop stops
// accumulating at its trip count even when κ is larger.
func TestKnownTripCountCapsUnrolling(t *testing.T) {
	src := `
void main() {
    int s = sym_int();
    for (int i = 0; i < 3; i++) {
        if (s > i) { putchar('x'); }
    }
}
`
	params := qce.DefaultParams()
	params.Kappa = 3
	p, a3 := analyze(t, src, params)
	params.Kappa = 30
	_, a30 := analyze(t, src, params)
	q3 := a3.PerFunc[p.Main.Index].Qt[0]
	q30 := a30.PerFunc[p.Main.Index].Qt[0]
	if diff := q30 - q3; diff > 1e-6 {
		t.Fatalf("known trip count 3 kept growing with κ: %f vs %f", q3, q30)
	}
}

// TestQtMonotoneInBeta: q(ℓ,c) is a polynomial in β with non-negative
// coefficients (Equation 3 only adds β-scaled successor counts), so raising
// the branch-feasibility probability must never lower any estimate.
func TestQtMonotoneInBeta(t *testing.T) {
	mk := func(beta float64) (*ir.Program, *qce.Analysis) {
		params := qce.DefaultParams()
		params.Beta = beta
		return analyze(t, echoSrc, params)
	}
	p, lo := mk(0.55)
	_, hi := mk(0.95)
	for fi := range p.Funcs {
		fl, fh := lo.PerFunc[fi], hi.PerFunc[fi]
		for pc := range fl.Qt {
			if fh.Qt[pc] < fl.Qt[pc]-1e-9 {
				t.Fatalf("f%d pc %d: Qt dropped from %f to %f when β rose",
					fi, pc, fl.Qt[pc], fh.Qt[pc])
			}
			for v := range fl.Qadd[pc] {
				if fh.Qadd[pc][v] < fl.Qadd[pc][v]-1e-9 {
					t.Fatalf("f%d pc %d: Qadd(%d) dropped from %f to %f when β rose",
						fi, pc, v, fl.Qadd[pc][v], fh.Qadd[pc][v])
				}
			}
		}
	}
}

// TestEstimatesNonNegativeAndFinite guards the table construction against
// sign or divergence bugs across every registered location of a program with
// nested loops, calls, and early exits.
func TestEstimatesNonNegativeAndFinite(t *testing.T) {
	src := `
int helper(int v) {
    for (int i = 0; i < v; i++) {
        if (i % 2 == 0) { putchar('h'); }
    }
    return v + 1;
}
void main() {
    int n = sym_int();
    if (n < 0) { halt(1); }
    int m = helper(n);
    while (m > 0) {
        m = m - helper(m % 3);
        if (m == 7) { break; }
    }
    putchar('.');
}
`
	p, a := analyze(t, src, qce.DefaultParams())
	for fi := range p.Funcs {
		fq := a.PerFunc[fi]
		for pc := range fq.Qt {
			q := fq.Qt[pc]
			if q < 0 || q != q || q > 1e18 {
				t.Fatalf("f%d pc %d: Qt=%v out of range", fi, pc, q)
			}
			for v, qa := range fq.Qadd[pc] {
				if qa < 0 || qa != qa || qa > 1e18 {
					t.Fatalf("f%d pc %d: Qadd(%d)=%v out of range", fi, pc, v, qa)
				}
			}
		}
	}
}

// TestZeroParamsNormalized: Analyze must tolerate zero-valued params.
func TestZeroParamsNormalized(t *testing.T) {
	p, err := lang.Compile(`void main() { putchar('x'); }`)
	if err != nil {
		t.Fatal(err)
	}
	a := qce.Analyze(p, qce.Params{})
	if a.Params.Beta <= 0 || a.Params.Kappa <= 0 {
		t.Fatalf("params not normalized: %+v", a.Params)
	}
}

// TestStringOutput exercises the debug printer.
func TestStringOutput(t *testing.T) {
	p, a := analyze(t, echoSrc, qce.DefaultParams())
	s := a.PerFunc[p.Main.Index].String()
	if len(s) == 0 {
		t.Fatal("empty table dump")
	}
}

// heapFlowSrc stores an input-derived value through a pointer and later
// branches on data loaded back through the same pointer.
const heapFlowSrc = `
void main() {
    ptr p = alloc(4);
    int v = toint(argchar(1, 0));
    p[1] = v;
    int u = p[1];
    if (u > 0) {
        putchar('x');
    }
}
`

// TestHeapPointerDependenceClosure pins the pointer alias clusters: the
// compiler materializes every p[i] address as a per-statement temp, so
// without the reverse derived-pointer edges a stored value would stop at
// that temp and never reach the named pointer local — and a later branch on
// loaded data would not count the stored value's sources among its query
// dependencies (leaving them cold for QCE-gated merging).
func TestHeapPointerDependenceClosure(t *testing.T) {
	prog, a := analyze(t, heapFlowSrc, qce.DefaultParams())
	fq := a.PerFunc[prog.Main.Index]
	idx := func(name string) int {
		t.Helper()
		for i, l := range fq.Fn.Locals {
			if l.Name == name {
				return i
			}
		}
		t.Fatalf("no local %q", name)
		return -1
	}
	v, p, u := idx("v"), idx("p"), idx("u")
	if !fq.Reach[v][p] {
		t.Error("stored value does not reach the pointer local it was stored through")
	}
	if !fq.Reach[v][u] {
		t.Error("stored value does not reach a later load through the same pointer")
	}
	if !fq.Reach[p][u] {
		t.Error("pointer local does not reach a load through it")
	}
	// The flow must make v count toward future queries somewhere it is
	// live: Qadd(pc, v) > 0 at v's definition.
	found := false
	for pc := range fq.Qadd {
		if fq.Qadd[pc][v] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("stored value has zero Qadd everywhere despite feeding a branch through the heap")
	}
}

// goldenQCESrc exercises the liveness sharpening the shared dataflow
// framework added: the counted loop provably overwrites all of buf, so the
// pre-loop straight-line prefix treats the array as dead, while from the
// loop header on the partially-written array is hot (its cells feed the
// post-loop branch).
const goldenQCESrc = `
void main() {
    int buf[4];
    int s = toint(argchar(1, 0));
    for (int i = 0; i < 4; i++) {
        buf[i] = s + i;
    }
    if (buf[2] > 9) { putchar('h'); } else { putchar('l'); }
}
`

// TestFullOverwriteKilledArrayNotHot: before the overwriting loop the
// array's current contents cannot influence any future query, so Qadd
// masks it out; inside the loop it is live and hot.
func TestFullOverwriteKilledArrayNotHot(t *testing.T) {
	p, a := analyze(t, goldenQCESrc, qce.DefaultParams())
	fq := a.PerFunc[p.Main.Index]
	buf := localIndex(p.Main, "buf")
	pre := -1
	for pc, in := range p.Main.Instrs {
		if in.Op == ir.OpArgChar {
			pre = pc
			break
		}
	}
	if pre < 0 {
		t.Fatal("argchar not found")
	}
	if q := fq.Qadd[pre][buf]; q != 0 {
		t.Fatalf("Qadd(buf)=%f before the overwriting loop, want 0 (dead)", q)
	}
	store := -1
	for pc, in := range p.Main.Instrs {
		if in.Op == ir.OpStore && in.Dst == buf {
			store = pc
			break
		}
	}
	if store < 0 {
		t.Fatal("store not found")
	}
	if q := fq.Qadd[store][buf]; q <= 0 {
		t.Fatalf("Qadd(buf)=%f inside the loop, want > 0 (live)", q)
	}
}

// TestQCETablePinned is the golden regression for the liveness promotion:
// moving QCE onto the shared dataflow framework (and adding the
// full-overwrite kill) must reproduce these estimates exactly — any drift
// in Qt or a hot set changes merge gating and shows up here before it
// shows up as a schedule change.
func TestQCETablePinned(t *testing.T) {
	const want = `qce main:
    0: Qt=11.037  
    1: Qt=10.037   $t0=2.362
    2: Qt=10.037   $t1=2.362
    3: Qt=10.037   s=2.362
    4: Qt=10.037   buf=2.362 s=2.362 i=7.675
    5: Qt=11.429   buf=2.689 s=2.689 i=8.740 $t2=3.362
    6: Qt=11.037   buf=2.362 s=2.362 i=8.675
    7: Qt=11.037   buf=2.362 s=2.362 i=8.675 $t3=2.362
    8: Qt=10.037   buf=2.362 s=2.362 i=7.675
    9: Qt=10.037   buf=2.362 s=2.362 i=7.675
   10: Qt=2.000    buf=1.000
   11: Qt=1.000    $t4=1.000
   12: Qt=1.000    $t5=1.000
   13: Qt=0.000   
   14: Qt=0.000   
   15: Qt=0.000   
   16: Qt=0.000   
`
	p, a := analyze(t, goldenQCESrc, qce.DefaultParams())
	if got := a.PerFunc[p.Main.Index].String(); got != want {
		t.Errorf("QCE table drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
