// Command paperbench regenerates the paper's evaluation figures (PLDI 2012,
// "Efficient State Merging in Symbolic Execution", §5) on the COREUTILS
// models, printing one data table per figure.
//
// Usage:
//
//	paperbench [-figure all|3|4|5|6|7|8|9|ff|spectrum|solver] [-budget 2s] [-timeout 10s] [-seed 1]
//
// Budgets replace the paper's 1h/2h wall-clock budgets; the shapes of the
// results (who wins, scaling with input size, crossovers) are the claims
// being checked, not absolute numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"symmerge/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate (3..9, ff, all)")
	budget := flag.Duration("budget", 2*time.Second, "time budget per budget-bound run")
	timeout := flag.Duration("timeout", 10*time.Second, "cutoff for exhaustive runs")
	seed := flag.Int64("seed", 1, "random seed for the randomized strategies")
	flag.Parse()

	opts := bench.Options{Budget: *budget, Timeout: *timeout, Seed: *seed}
	run := func(name string, f func(bench.Options) *bench.Table) {
		if *figure == "all" || *figure == name {
			fmt.Print(f(opts).String())
			fmt.Println()
		}
	}
	if *figure == "all" || *figure == "3" {
		for _, t := range bench.Figure3(opts) {
			fmt.Print(t.String())
			fmt.Println()
		}
	}
	run("4", bench.Figure4)
	run("5", bench.Figure5)
	run("6", bench.Figure6)
	run("7", bench.Figure7)
	run("8", bench.Figure8)
	run("9", bench.Figure9)
	run("ff", bench.FFStat)
	run("spectrum", bench.Spectrum)
	run("solver", bench.SolverSessions)

	switch *figure {
	case "all", "3", "4", "5", "6", "7", "8", "9", "ff", "spectrum", "solver":
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
}
