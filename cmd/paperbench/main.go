// Command paperbench regenerates the paper's evaluation figures (PLDI 2012,
// "Efficient State Merging in Symbolic Execution", §5) on the COREUTILS
// models, printing one data table per figure.
//
// Usage:
//
//	paperbench [-figure all|3|4|5|6|7|8|9|ff|spectrum|solver|scaling|preprocess|corpus|obs|summaries|daemon|analysis] \
//	           [-budget 2s] [-timeout 10s] [-seed 1] [-workers N] \
//	           [-preprocess on|off|passes] [-json BENCH_pr3.json]
//
// Budgets replace the paper's 1h/2h wall-clock budgets; the shapes of the
// results (who wins, scaling with input size, crossovers) are the claims
// being checked, not absolute numbers.
//
// -workers N shards every exploration across N parallel workers; the
// "scaling" figure additionally compares N workers against the sequential
// baseline on the whole COREUTILS suite and verifies that sharding leaves
// the exploration results (paths, coverage, errors) identical.
//
// -preprocess forces the solver's preprocessing-pass pipeline spec on every
// run (ablation); the "preprocess" figure instead measures the on/off pair
// explicitly and verifies result identity. The "corpus" figure emits an
// on-disk test corpus per tool per merging regime, replays each through the
// IR interpreter, and checks expectation and coverage-parity invariants.
// The "obs" figure measures the observability layer: per-tool wall-clock
// with tracing+metrics on vs off, corpus-digest parity between the arms,
// and the aggregate metrics snapshot (query latency histograms by class).
// The "summaries" figure measures compositional function summaries: per-tool
// wall-clock under SSM+QCE with the shared summary cache on vs off, plus
// corpus-digest and exact-path-census parity between the arms.
// The "daemon" figure measures cross-run persistence (the cmd/symxd lever):
// a cold pass populates an empty persistent store, then a warm pass re-runs
// the suite in a fresh domain rehydrated from the flushed store, with
// per-tool corpus-digest and census parity between the passes.
// The "analysis" figure measures the static dataflow analyses: per-tool
// wall-clock under SSM+QCE+bounds with branch pruning/check elision on vs
// off, counts of pruned sides, elided checks and lifted heap-gated call
// sites, plus corpus-digest and census parity between the arms.
// -json writes the ran figures' machine-readable report (schema documented
// in README.md) to the given path — the artifacts the bench trajectory
// tracks as BENCH_pr3.json (preprocess), BENCH_pr4.json (corpus),
// BENCH_pr7.json (obs), BENCH_pr8.json (summaries), BENCH_pr9.json
// (daemon), and BENCH_pr10.json (analysis).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"symmerge/internal/bench"
	"symmerge/symx"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate (3..9, ff, spectrum, solver, scaling, preprocess, all)")
	budget := flag.Duration("budget", 2*time.Second, "time budget per budget-bound run")
	timeout := flag.Duration("timeout", 10*time.Second, "cutoff for exhaustive runs")
	seed := flag.Int64("seed", 1, "random seed for the randomized strategies")
	workers := flag.Int("workers", 0, "parallel exploration workers per run (0 = sequential)")
	preproc := flag.String("preprocess", "", "force a solver preprocessing spec on every run (on, off, or comma list of passes)")
	jsonOut := flag.String("json", "", "write the preprocess figure's machine-readable report to this path (e.g. BENCH_pr3.json)")
	flag.Parse()

	if err := symx.ParsePreprocess(*preproc); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}
	opts := bench.Options{Budget: *budget, Timeout: *timeout, Seed: *seed,
		Workers: *workers, Preprocess: *preproc}
	run := func(name string, f func(bench.Options) *bench.Table) {
		if *figure == "all" || *figure == name {
			fmt.Print(f(opts).String())
			fmt.Println()
		}
	}
	if *figure == "all" || *figure == "3" {
		for _, t := range bench.Figure3(opts) {
			fmt.Print(t.String())
			fmt.Println()
		}
	}
	run("4", bench.Figure4)
	run("5", bench.Figure5)
	run("6", bench.Figure6)
	run("7", bench.Figure7)
	run("8", bench.Figure8)
	run("9", bench.Figure9)
	run("ff", bench.FFStat)
	run("spectrum", bench.Spectrum)
	run("solver", bench.SolverSessions)
	run("scaling", bench.ParallelScaling)
	var jsonFigs []bench.JSONFigure
	if *figure == "all" || *figure == "preprocess" {
		t, fig := bench.PreprocessFigure(opts)
		fmt.Print(t.String())
		fmt.Println()
		jsonFigs = append(jsonFigs, fig)
	}
	if *figure == "all" || *figure == "corpus" {
		t, fig := bench.CorpusFigure(opts)
		fmt.Print(t.String())
		fmt.Println()
		jsonFigs = append(jsonFigs, fig)
	}
	if *figure == "all" || *figure == "obs" {
		t, fig := bench.ObsFigure(opts)
		fmt.Print(t.String())
		fmt.Println()
		jsonFigs = append(jsonFigs, fig)
	}
	if *figure == "all" || *figure == "summaries" {
		t, fig := bench.SummariesFigure(opts)
		fmt.Print(t.String())
		fmt.Println()
		jsonFigs = append(jsonFigs, fig)
	}
	if *figure == "all" || *figure == "daemon" {
		t, fig := bench.DaemonFigure(opts)
		fmt.Print(t.String())
		fmt.Println()
		jsonFigs = append(jsonFigs, fig)
	}
	if *figure == "all" || *figure == "analysis" {
		t, fig := bench.AnalysisFigure(opts)
		fmt.Print(t.String())
		fmt.Println()
		jsonFigs = append(jsonFigs, fig)
	}
	if *jsonOut != "" && len(jsonFigs) > 0 {
		rep := bench.Report{Schema: "symmerge-paperbench/v1", Figures: jsonFigs}
		data, err := rep.Marshal()
		if err == nil {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}

	switch *figure {
	case "all", "3", "4", "5", "6", "7", "8", "9", "ff", "spectrum", "solver", "scaling", "preprocess", "corpus", "obs", "summaries", "daemon", "analysis":
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
}
