// Command paperbench regenerates the paper's evaluation figures (PLDI 2012,
// "Efficient State Merging in Symbolic Execution", §5) on the COREUTILS
// models, printing one data table per figure.
//
// Usage:
//
//	paperbench [-figure all|3|4|5|6|7|8|9|ff|spectrum|solver|scaling] [-budget 2s] [-timeout 10s] [-seed 1] [-workers N]
//
// Budgets replace the paper's 1h/2h wall-clock budgets; the shapes of the
// results (who wins, scaling with input size, crossovers) are the claims
// being checked, not absolute numbers.
//
// -workers N shards every exploration across N parallel workers; the
// "scaling" figure additionally compares N workers against the sequential
// baseline on the whole COREUTILS suite and verifies that sharding leaves
// the exploration results (paths, coverage, errors) identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"symmerge/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate (3..9, ff, spectrum, solver, scaling, all)")
	budget := flag.Duration("budget", 2*time.Second, "time budget per budget-bound run")
	timeout := flag.Duration("timeout", 10*time.Second, "cutoff for exhaustive runs")
	seed := flag.Int64("seed", 1, "random seed for the randomized strategies")
	workers := flag.Int("workers", 0, "parallel exploration workers per run (0 = sequential)")
	flag.Parse()

	opts := bench.Options{Budget: *budget, Timeout: *timeout, Seed: *seed, Workers: *workers}
	run := func(name string, f func(bench.Options) *bench.Table) {
		if *figure == "all" || *figure == name {
			fmt.Print(f(opts).String())
			fmt.Println()
		}
	}
	if *figure == "all" || *figure == "3" {
		for _, t := range bench.Figure3(opts) {
			fmt.Print(t.String())
			fmt.Println()
		}
	}
	run("4", bench.Figure4)
	run("5", bench.Figure5)
	run("6", bench.Figure6)
	run("7", bench.Figure7)
	run("8", bench.Figure8)
	run("9", bench.Figure9)
	run("ff", bench.FFStat)
	run("spectrum", bench.Spectrum)
	run("solver", bench.SolverSessions)
	run("scaling", bench.ParallelScaling)

	switch *figure {
	case "all", "3", "4", "5", "6", "7", "8", "9", "ff", "spectrum", "solver", "scaling":
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
}
