// Command qcedump compiles a MiniC program and prints its IR disassembly and
// the QCE query-count tables (Qt and per-variable Qadd at every location),
// for inspecting what the heuristic considers hot. With -facts it prints a
// static-analysis fact table (internal/analysis) instead.
//
// Usage:
//
//	qcedump [-alpha f] [-beta f] [-kappa n] [-facts intervals|effects|liveness] file.mc
package main

import (
	"flag"
	"fmt"
	"os"

	"symmerge/internal/analysis"
	"symmerge/internal/lang"
	"symmerge/internal/qce"
)

func main() {
	alpha := flag.Float64("alpha", 0.5, "QCE hot-variable threshold α")
	beta := flag.Float64("beta", 0.8, "QCE branch feasibility probability β")
	kappa := flag.Int("kappa", 10, "QCE loop unroll bound κ")
	facts := flag.String("facts", "", "dump analysis facts instead of QCE tables: intervals, effects, or liveness")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qcedump [flags] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcedump:", err)
		os.Exit(1)
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcedump:", err)
		os.Exit(1)
	}
	fmt.Print(prog.String())
	if *facts != "" {
		ap := analysis.Analyze(prog)
		switch *facts {
		case "intervals":
			for _, ff := range ap.Funcs {
				fmt.Print(ff.IntervalsString())
			}
		case "liveness":
			for _, ff := range ap.Funcs {
				fmt.Print(ff.LivenessString())
			}
		case "effects":
			fmt.Print(ap.EffectsString())
		default:
			fmt.Fprintf(os.Stderr, "qcedump: unknown -facts table %q (want intervals, effects, or liveness)\n", *facts)
			os.Exit(2)
		}
		return
	}
	a := qce.Analyze(prog, qce.Params{Alpha: *alpha, Beta: *beta, Kappa: *kappa, Zeta: 1})
	for _, fq := range a.PerFunc {
		fmt.Print(fq.String())
	}
}
