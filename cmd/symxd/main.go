// Command symxd is the persistent symbolic-execution daemon: an HTTP/JSON
// service that accepts MiniC programs, explores each as one job inside a
// shared long-lived domain (one expression builder plus counterexample and
// summary caches), and streams results and canonical corpus entries back
// as JSON lines.
//
// With -store the domain is backed by an on-disk persistent store, so
// solver verdicts (whole queries and blasted independence groups) and
// function summaries survive restarts: resubmitting a program family to a
// warm daemon answers many queries from disk instead of the SAT solver.
// With -checkpoint-dir, jobs submitted with a "key" are drain-safe: a
// SIGTERM preempts them into resumable snapshots, and resubmitting the
// same key with "resume" continues where the drain stopped them.
//
// Endpoints:
//
//	POST /v1/jobs     submit a job (JSON body), response is streaming JSONL:
//	                  {"event":"accepted"} → {"event":"test"}* → {"event":"result"}
//	GET  /v1/progress live aggregate of every in-flight job's engines
//	GET  /v1/stats    daemon counters: job outcomes, domain lifecycle
//	                  (rotations, builders_reclaimed), warm-store hits
//	GET  /healthz     liveness
//
// Flags:
//
//	-addr string             listen address (default 127.0.0.1:7877)
//	-store string            persistent store directory ("" = in-memory)
//	-store-tag string        engine generation tag for persisted segments
//	-checkpoint-dir string   root for per-key job checkpoints ("" = off)
//	-checkpoint-every dur    per-job snapshot interval (default 2s)
//	-max-jobs int            concurrent job slots (default 2)
//	-default-timeout dur     per-job deadline when the job sets none (default 60s)
//	-max-timeout dur         cap on requested per-job deadlines (default 10m)
//	-rotate-nodes int        builder node watermark for domain rotation
//	                         (default 1<<20; negative disables)
//	-drain-grace dur         how long a SIGTERM drain waits for in-flight
//	                         jobs to checkpoint (default 30s)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"symmerge/internal/daemon"
)

func main() {
	var opts daemon.Options
	flag.StringVar(&opts.Addr, "addr", "127.0.0.1:7877", "listen address")
	flag.StringVar(&opts.StoreDir, "store", "", "persistent store directory (empty = in-memory domain)")
	flag.StringVar(&opts.StoreTag, "store-tag", "", "engine generation tag for persisted segments")
	flag.StringVar(&opts.CheckpointDir, "checkpoint-dir", "", "root directory for per-key job checkpoints (empty = off)")
	flag.DurationVar(&opts.CheckpointEvery, "checkpoint-every", 0, "per-job snapshot interval (default 2s)")
	flag.IntVar(&opts.MaxJobs, "max-jobs", 0, "concurrent job slots (default 2)")
	flag.DurationVar(&opts.DefaultTimeout, "default-timeout", 0, "per-job deadline when the job sets none (default 60s)")
	flag.DurationVar(&opts.MaxTimeout, "max-timeout", 0, "cap on requested per-job deadlines (default 10m)")
	flag.IntVar(&opts.RotateNodes, "rotate-nodes", 0, "builder node watermark for domain rotation (negative disables)")
	grace := flag.Duration("drain-grace", 30*time.Second, "SIGTERM drain grace period")
	flag.Parse()

	srv, err := daemon.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symxd: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "symxd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "symxd: listening on http://%s/ (POST /v1/jobs, /v1/progress, /v1/stats)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(os.Stderr, "symxd: %s — draining (in-flight jobs checkpoint within %s)\n", got, *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "symxd: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "symxd: drained")
}
