// Command symxtrace inspects JSONL event traces produced by symx -trace
// (schema symmerge-trace/v1).
//
// By default it validates the stream — header, per-event required fields,
// footer accounting — and prints a summary:
//
//	symxtrace run.trace
//
// With -chrome it additionally converts the trace to the Chrome
// trace-event format, viewable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing, one lane per worker with solver-query and merge spans:
//
//	symxtrace -chrome run.json run.trace
//
// -fail-drops makes a trace with a non-zero dropped count exit non-zero —
// the CI completeness gate (a dropped event means the sink's buffer was
// outrun, so the trace under-represents the run).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"symmerge/internal/obs"
)

func main() {
	var (
		chromeOut = flag.String("chrome", "", "also convert to Chrome trace-event JSON at this path (view in Perfetto)")
		failDrops = flag.Bool("fail-drops", false, "exit non-zero if the trace dropped any events")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: symxtrace [-chrome out.json] [-fail-drops] trace.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	sum, err := obs.Validate(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}

	fmt.Printf("%s: valid %s\n", path, obs.SchemaVersion)
	fmt.Printf("  events:  %d (%d dropped)\n", sum.Events, sum.Dropped)
	fmt.Printf("  lanes:   %d\n", sum.Lanes)
	types := make([]string, 0, len(sum.ByType))
	for t := range sum.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-14s %d\n", t, sum.ByType[t])
	}

	if *chromeOut != "" {
		in, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		out, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.ChromeTrace(in, out); err != nil {
			fatal(fmt.Errorf("chrome convert: %w", err))
		}
		in.Close()
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  chrome:  %s (open in https://ui.perfetto.dev)\n", *chromeOut)
	}

	if *failDrops && sum.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "symxtrace: %d events dropped — raise -trace-buffer\n", sum.Dropped)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symxtrace:", err)
	os.Exit(1)
}
