// Command corpusgen maintains the committed golden mini-corpus: the
// on-disk test corpus of every COREUTILS model explored exhaustively at
// the pinned miniature input sizes (coreutils.Tool.MiniConfig).
//
// Usage:
//
//	corpusgen [-dir internal/coreutils/testdata/corpus] [-tool name]
//	corpusgen -check
//
// Without -check it (re)generates the corpus in place — run it after
// changing a model, the engine's test generation, or the corpus format,
// and commit the result. With -check it regenerates into a temporary
// directory and compares per-tool content digests against the committed
// tree, exiting non-zero on any drift: the CI gate that the committed
// corpus is exactly what the current engine emits.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/symx"
)

func main() {
	dir := flag.String("dir", "internal/coreutils/testdata/corpus", "corpus root directory (one subdirectory per tool)")
	one := flag.String("tool", "", "regenerate a single tool's corpus")
	check := flag.Bool("check", false, "regenerate into a temp dir and diff digests against -dir instead of writing")
	flag.Parse()

	tools := coreutils.All()
	if *one != "" {
		t, err := coreutils.Get(*one)
		if err != nil {
			fatal(err)
		}
		tools = []*coreutils.Tool{t}
	}

	outRoot := *dir
	if *check {
		tmp, err := os.MkdirTemp("", "corpusgen-check-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		outRoot = tmp
	}

	drift := 0
	for _, tool := range tools {
		sub := filepath.Join(outRoot, tool.Name)
		if !*check {
			// Regenerate from scratch so stale test files cannot linger.
			if err := os.RemoveAll(sub); err != nil {
				fatal(err)
			}
		}
		n, err := generate(tool, sub)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", tool.Name, err))
		}
		if *check {
			got, err := corpus.DirDigest(sub)
			if err != nil {
				fatal(err)
			}
			want, err := corpus.DirDigest(filepath.Join(*dir, tool.Name))
			if err != nil {
				fmt.Printf("DRIFT %-10s committed corpus unreadable: %v\n", tool.Name, err)
				drift++
				continue
			}
			if got != want {
				fmt.Printf("DRIFT %-10s regenerated digest %s… != committed %s…\n", tool.Name, got[:12], want[:12])
				drift++
				continue
			}
			fmt.Printf("ok    %-10s %d tests\n", tool.Name, n)
		} else {
			fmt.Printf("wrote %-10s %d tests -> %s\n", tool.Name, n, sub)
		}
	}
	// A full pass also polices orphans: committed corpus directories whose
	// tool no longer exists in the registry (renamed or removed models)
	// would otherwise linger forever — drift in -check mode, deleted on
	// regeneration.
	if *one == "" {
		orphans, err := orphanDirs(*dir)
		if err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
		for _, name := range orphans {
			if *check {
				fmt.Printf("DRIFT %-10s corpus directory has no registered tool\n", name)
				drift++
				continue
			}
			if err := os.RemoveAll(filepath.Join(*dir, name)); err != nil {
				fatal(err)
			}
			fmt.Printf("prune %-10s removed (no registered tool)\n", name)
		}
	}
	if drift > 0 {
		fmt.Printf("corpusgen: %d tools drifted from the committed corpus; regenerate with `go run ./cmd/corpusgen` and commit\n", drift)
		os.Exit(1)
	}
}

// orphanDirs lists subdirectories of the committed corpus root that do not
// correspond to a registered tool.
func orphanDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := coreutils.Get(e.Name()); err != nil {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// generate explores one tool at the mini sizes and writes its corpus,
// returning the number of unique tests.
func generate(tool *coreutils.Tool, dir string) (int, error) {
	p, err := tool.Compile()
	if err != nil {
		return 0, err
	}
	cfg := tool.MiniConfig()
	cfg.CorpusDir = dir
	cfg.CorpusLabel = tool.Name
	res := symx.Run(p, cfg)
	if res.ConfigErr != nil {
		return 0, res.ConfigErr
	}
	if res.CorpusErr != nil {
		return 0, res.CorpusErr
	}
	if !res.Completed {
		return 0, fmt.Errorf("exploration did not complete at mini sizes")
	}
	return res.Stats.TestsEmitted - res.Stats.TestsDeduped, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
