// Command symx explores a MiniC program symbolically and reports paths,
// coverage, solver statistics, generated test cases and any errors found.
//
// Usage:
//
//	symx [flags] file.mc        explore a MiniC source file
//	symx [flags] -tool echo     explore a built-in COREUTILS model
//
// Examples:
//
//	symx -args 2 -arglen 2 -merge dsm -qce -tool echo
//	symx -args 1 -arglen 3 -tests prog.mc
//	symx -workers 4 -tool base64                      # sharded exploration
//	symx -portfolio none,ssm+qce,dsm+qce -tool expr   # race merging regimes
//	symx -emit-corpus /tmp/echo.corpus -tool echo     # persist the tests
//	symx -replay /tmp/echo.corpus -tool echo          # replay them (oracle)
//	symx -trace /tmp/echo.trace -tool echo            # JSONL event trace
//	symx -debug-addr localhost:6060 -tool expr        # pprof + live /progress
//
// -emit-corpus streams every generated test case to an on-disk corpus
// (internal/corpus format); -replay executes a stored corpus through the
// independent IR interpreter and fails on any expectation or
// coverage-parity mismatch — the regression gate CI runs against the
// committed golden corpus.
//
// Ctrl-C cancels the exploration promptly (Completed=false) instead of
// killing the process mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/symx"
)

func main() {
	var (
		toolName = flag.String("tool", "", "run a built-in COREUTILS model instead of a file")
		nArgs    = flag.Int("args", 2, "number of symbolic command-line arguments")
		argLen   = flag.Int("arglen", 2, "max characters per symbolic argument")
		stdinLen = flag.Int("stdin", 0, "symbolic stdin bytes")
		merge    = flag.String("merge", "none", "state merging: none, ssm, dsm, func (function summaries)")
		useQCE   = flag.Bool("qce", false, "gate merging with query count estimation")
		alpha    = flag.Float64("alpha", 0.5, "QCE threshold α")
		beta     = flag.Float64("beta", 0.8, "QCE branch probability β")
		kappa    = flag.Int("kappa", 10, "QCE loop bound κ")
		strategy = flag.String("strategy", "", "search strategy: dfs, bfs, random, coverage, topo")
		seed     = flag.Int64("seed", 1, "random seed")
		budget   = flag.Duration("time", 30*time.Second, "exploration time budget")
		tests    = flag.Bool("tests", false, "generate concrete test cases")
		bounds   = flag.Bool("bounds", false, "report out-of-bounds array accesses as errors")
		dumpIR   = flag.Bool("ir", false, "print the compiled IR and exit")
		census   = flag.Bool("census", false, "track the exact-path shadow census")
		summ     = flag.Bool("summaries", false, "cache compositional function summaries and discharge call sites from them")
		summMax  = flag.Uint64("summary-steps", 0, "step budget per summary recording (0 = default 4096)")
		noSess   = flag.Bool("nosessions", false, "disable incremental solver sessions (ablation)")
		preproc  = flag.String("preprocess", "on", "solver preprocessing pipeline: on, off, or comma list of passes (simplify,subst-eq,slice)")
		stats    = flag.Bool("stats", false, "print rewrite-rule hit counters and preprocessing statistics")
		workers  = flag.Int("workers", 0, "parallel exploration workers (0 = sequential)")
		portf    = flag.String("portfolio", "", "race merge regimes concurrently, first to finish wins (comma list, e.g. none,ssm+qce,dsm+qce)")
		emitDir  = flag.String("emit-corpus", "", "stream generated tests to an on-disk corpus at this directory (implies -tests)")
		replayTo = flag.String("replay", "", "replay a stored corpus through the IR interpreter instead of exploring; non-zero exit on any mismatch")
		ckptDir  = flag.String("checkpoint", "", "crash-safe exploration: write resumable snapshots to this directory")
		ckptInt  = flag.Duration("checkpoint-every", 30*time.Second, "snapshot interval with -checkpoint")
		resume   = flag.Bool("resume", false, "with -checkpoint, resume from the newest valid snapshot")
		traceTo  = flag.String("trace", "", "stream a JSONL event trace (symmerge-trace/v1) to this file; inspect with symxtrace")
		traceBuf = flag.Int("trace-buffer", 0, "trace sink buffer in events (0 = default 4096); overflow drops, never blocks")
		dbgAddr  = flag.String("debug-addr", "", "serve pprof, expvar metrics and /progress on this address (e.g. localhost:6060)")
		progEach = flag.Duration("progress", 0, "print a one-line progress report to stderr at this interval")
		noAn     = flag.Bool("noanalysis", false, "disable the static dataflow analyses (branch pruning, check elision, merge-key slimming, heap-gate lifting)")
	)
	flag.Parse()

	var src, label string
	switch {
	case *toolName != "":
		tool, err := coreutils.Get(*toolName)
		if err != nil {
			fatal(err)
		}
		src = tool.Source
		label = tool.Name
		if *stdinLen == 0 && tool.UsesStdin {
			*stdinLen = tool.DefaultStdin
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
		label = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: symx [flags] file.mc | symx [flags] -tool name")
		os.Exit(2)
	}

	prog, err := symx.Compile(src)
	if err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Print(prog.IR())
		return
	}
	if *replayTo != "" {
		replayCorpus(*replayTo, prog)
		return
	}

	// Ctrl-C (and, for checkpointed runs under a supervisor, SIGTERM)
	// cancels the exploration through the engine's context poll, so a long
	// run stops promptly, still prints its partial statistics, and — with
	// -checkpoint — persists a resumable snapshot on the way out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := symx.Config{
		NArgs:           *nArgs,
		ArgLen:          *argLen,
		StdinLen:        *stdinLen,
		UseQCE:          *useQCE,
		QCE:             symx.QCEParams{Alpha: *alpha, Beta: *beta, Kappa: *kappa, Zeta: 1},
		Strategy:        symx.Strategy(*strategy),
		Seed:            *seed,
		MaxTime:         *budget,
		Workers:         *workers,
		Context:         ctx,
		CollectTests:    *tests,
		CheckBounds:     *bounds,
		TrackExactPaths: *census,
		Summaries:       *summ,
		SummaryMaxSteps: *summMax,
		DisableSessions: *noSess,
		Preprocess:      *preproc,
		CorpusDir:       *emitDir,
		CorpusLabel:     label,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptInt,
		Resume:          *resume,
		TraceFile:       *traceTo,
		TraceBuffer:     *traceBuf,
		DisableAnalysis: *noAn,
	}
	cfg.Merge = parseMerge(*merge)
	if err := symx.ParsePreprocess(*preproc); err != nil {
		fatal(err)
	}

	// Any observability consumer needs the metrics registry and the live
	// monitor; wiring them costs nothing when nobody looks.
	if *dbgAddr != "" || *progEach > 0 || *traceTo != "" {
		cfg.Metrics = symx.NewMetrics()
		cfg.Monitor = symx.NewMonitor()
	}
	if *dbgAddr != "" {
		if err := serveDebug(*dbgAddr, cfg.Metrics, cfg.Monitor); err != nil {
			fatal(err)
		}
	}
	if *progEach > 0 {
		stopProg := reportProgress(*progEach, cfg.Monitor)
		defer stopProg()
	}

	if *portf != "" {
		regimes := strings.Split(*portf, ",")
		for _, r := range regimes {
			sub := cfg
			sub.Portfolio = nil
			spec, qce := strings.CutSuffix(strings.TrimSpace(r), "+qce")
			sub.UseQCE = qce
			sub.Merge = parseMerge(spec)
			cfg.Portfolio = append(cfg.Portfolio, sub)
		}
	}

	res := symx.Run(prog, cfg)
	if res.ConfigErr != nil {
		fatal(res.ConfigErr)
	}
	st := res.Stats
	if res.PortfolioWinner >= 0 {
		spec := strings.Split(*portf, ",")[res.PortfolioWinner]
		fmt.Printf("portfolio:     regime %q won (%d raced)\n",
			strings.TrimSpace(spec), len(cfg.Portfolio))
	}
	if res.Completed {
		fmt.Printf("completed:     true (%.3fs)\n", st.ElapsedSeconds)
	} else {
		fmt.Printf("completed:     false (%.3fs, interrupted: %s)\n", st.ElapsedSeconds, res.Interrupted)
	}
	if res.CheckpointErr != nil {
		fmt.Fprintln(os.Stderr, "symx: checkpoint:", res.CheckpointErr)
	}
	fmt.Printf("paths:         %s (states completed: %d)\n", st.PathsMult, st.PathsCompleted)
	if *census {
		fmt.Printf("exact paths:   %d\n", st.ExactPaths)
	}
	fmt.Printf("coverage:      %.1f%% (%d/%d instructions)\n",
		100*st.Coverage(), st.CoveredInstrs, st.TotalInstrs)
	fmt.Printf("steps:         %d (instructions %d, forks %d)\n",
		st.Steps, st.Instructions, st.Forks)
	fmt.Printf("merges:        %d (attempts %d, fast-forward picks %d)\n",
		st.Merges, st.MergeAttempts, st.FFSelected)
	fmt.Printf("solver:        %d queries, %d SAT calls, %d cache hits, %v in SAT\n",
		st.Solver.Queries, st.Solver.SATCalls,
		st.Solver.CacheHits+st.Solver.ModelReuseHits, st.Solver.SATTime.Round(time.Millisecond))
	if !*noAn {
		fmt.Printf("analysis:      %d branch sides pruned, %d checks elided, %d heap-gated sites lifted\n",
			st.PrunedStatic, st.BoundsElided, st.SummaryHeapLifted)
	}
	if *summ {
		fmt.Printf("summaries:     %d sites discharged (%d entries applied), %d recorded, %d inline fallbacks\n",
			st.SummaryHits, st.SummaryEntries, st.SummaryRecords, st.SummaryRejects)
	}
	if *traceTo != "" {
		fmt.Printf("trace:         %d events at %s (%d dropped)\n", res.TraceEvents, *traceTo, res.TraceDrops)
		if res.TraceErr != nil {
			fmt.Fprintln(os.Stderr, "symx: trace:", res.TraceErr)
		}
	}
	if *emitDir != "" {
		if res.CorpusErr != nil {
			fatal(res.CorpusErr)
		}
		fmt.Printf("corpus:        %d tests at %s (%d emitted, %d duplicates dropped)\n",
			st.TestsEmitted-st.TestsDeduped, *emitDir, st.TestsEmitted, st.TestsDeduped)
	}
	if *stats {
		printStats(st)
	}
	for i, e := range res.Errors {
		fmt.Printf("error[%d]:      %s (args %q)\n", i, e.Error(), e.Args)
	}
	for i, tc := range res.Tests {
		fmt.Printf("test[%d]:       args=%q stdin=%q -> output=%q exit=%d",
			i, tc.Args, tc.Stdin, tc.Output, tc.Exit)
		if tc.IsErr {
			fmt.Printf(" ERROR: %s", tc.Msg)
		}
		fmt.Println()
	}
}

// printStats renders the -stats block: CNF encoding effort, the
// preprocessing pipeline's node-count trajectory, and the rewrite-rule hit
// counters from the expression builder's rule table.
func printStats(st symx.Stats) {
	fmt.Printf("encoding:      %d SAT vars, %d clauses emitted\n",
		st.Solver.SATVars, st.Solver.SATClauses)
	if st.TestsEmitted > 0 {
		fmt.Printf("tests:         %d emitted, %d deduplicated away\n",
			st.TestsEmitted, st.TestsDeduped)
	}
	if st.SummarySteps > 0 {
		fmt.Printf("summary cost:  %d recording steps, %d assume-summary queries\n",
			st.SummarySteps, st.Solver.SummaryQueries)
	}
	if st.Solver.PreprocQueries > 0 {
		in, out := st.Solver.PreprocNodesIn, st.Solver.PreprocNodesOut
		pct := 0.0
		if in > 0 {
			pct = 100 * (1 - float64(out)/float64(in))
		}
		fmt.Printf("preprocess:    %d queries, nodes %d -> %d (%.1f%% shed)\n",
			st.Solver.PreprocQueries, in, out, pct)
	}
	if len(st.Rules) > 0 {
		fmt.Printf("rules:         %d distinct rewrite rules fired\n", len(st.Rules))
		for i, r := range st.Rules {
			if i >= 12 {
				fmt.Printf("    ... %d more\n", len(st.Rules)-i)
				break
			}
			fmt.Printf("    %-18s %d\n", r.Name, r.Hits)
		}
	}
}

// replayCorpus runs the stored corpus through the IR interpreter and exits
// non-zero on any expectation or coverage-parity mismatch.
func replayCorpus(dir string, prog *symx.Program) {
	rep, err := corpus.Replay(dir, prog.Internal())
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.Summary())
	for _, m := range rep.Mismatches {
		fmt.Println("  MISMATCH", m)
	}
	if len(rep.MissingLocs) > 0 {
		fmt.Printf("  PARITY: %d symbolically covered locations unreached by replay\n", len(rep.MissingLocs))
	}
	if len(rep.ExtraLocs) > 0 {
		fmt.Printf("  PARITY: %d replay-covered locations outside the symbolic set\n", len(rep.ExtraLocs))
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func parseMerge(spec string) symx.MergeMode {
	switch spec {
	case "none":
		return symx.MergeNone
	case "ssm":
		return symx.MergeSSM
	case "dsm":
		return symx.MergeDSM
	case "func":
		return symx.MergeFunc
	}
	fatal(fmt.Errorf("unknown merge mode %q", spec))
	panic("unreachable")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symx:", err)
	os.Exit(1)
}
