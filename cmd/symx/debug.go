package main

// The -debug-addr introspection endpoint and the -progress stderr reporter.
//
// -debug-addr serves the standard library's diagnostic surface plus a live
// run view on one listener:
//
//	/debug/pprof/...    net/http/pprof (CPU, heap, goroutine profiles)
//	/debug/vars         expvar, including "symmerge.metrics" — the full
//	                    counter/histogram snapshot (symmerge-metrics/v1)
//	/progress           aggregate live progress (symmerge-progress/v1):
//	                    states, worklist, coverage, query counters
//
// The endpoint is read-only and attaches no cost to the exploration hot
// path: engines publish immutable snapshots on their step cadence and the
// handlers only ever read those.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"time"

	"symmerge/symx"
)

// serveDebug binds addr and serves pprof, expvar and /progress in the
// background for the lifetime of the process. Binding failures are
// reported synchronously so a typo'd address fails the run up front.
func serveDebug(addr string, met *symx.Metrics, mon *symx.Monitor) error {
	symx.PublishMetrics(met)
	http.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(mon.Progress())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug-addr: %w", err)
	}
	fmt.Fprintf(os.Stderr, "symx: debug endpoint at http://%s/ (pprof, /debug/vars, /progress)\n", ln.Addr())
	go http.Serve(ln, nil)
	return nil
}

// reportProgress prints a one-line run summary to stderr every interval:
//
//	symx: 2.0s states=14 worklist=9 cov=61.2% steps=48213 (24106/s) queries=1930 (965/s)
//
// Rates are deltas over the reporting interval, not lifetime averages, so
// a stall shows up immediately. The returned stop function halts the
// ticker; the final result line comes from the normal run output.
func reportProgress(interval time.Duration, mon *symx.Monitor) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var lastSteps, lastQueries uint64
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			p := mon.Progress()
			secs := interval.Seconds()
			fmt.Fprintf(os.Stderr,
				"symx: %.1fs states=%d worklist=%d cov=%.1f%% steps=%d (%.0f/s) queries=%d (%.0f/s)\n",
				p.ElapsedSeconds, p.PathsCompleted, p.Worklist, p.CoveragePct,
				p.Steps, float64(p.Steps-lastSteps)/secs,
				p.Queries, float64(p.Queries-lastQueries)/secs)
			lastSteps, lastQueries = p.Steps, p.Queries
		}
	}()
	return func() { close(done) }
}
