// Command symxlint runs symmerge's repo-specific static checks (package
// internal/lint): expr.Expr nodes must be built through expr.Builder (hash
// consing), and every obs event constant must have a trace-schema row. CI's
// static-analysis job runs it next to go vet and staticcheck.
//
// Usage:
//
//	symxlint [dir]
//
// dir defaults to the current directory and should be the module root.
// Exits 1 when any issue is found, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"symmerge/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: symxlint [dir]")
		flag.PrintDefaults()
	}
	flag.Parse()
	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}
	issues, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symxlint:", err)
		os.Exit(2)
	}
	for _, is := range issues {
		fmt.Println(is)
	}
	if len(issues) > 0 {
		os.Exit(1)
	}
}
