module symmerge

go 1.24
