// Benchmarks regenerating the paper's evaluation (one per figure of §5)
// plus engine micro-benchmarks. Each figure benchmark executes its full
// experiment once per iteration with miniature budgets; run cmd/paperbench
// for the real tables with larger budgets.
package symmerge_test

import (
	"fmt"
	"testing"
	"time"

	"symmerge/internal/bench"
	"symmerge/internal/coreutils"
	"symmerge/symx"
)

func benchOpts() bench.Options {
	return bench.Options{
		Budget:  200 * time.Millisecond,
		Timeout: time.Second,
		Seed:    1,
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.Figure3(benchOpts())
		if len(tables) != 3 {
			b.Fatalf("expected 3 tool tables, got %d", len(tables))
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure4(benchOpts())
		if len(t.Rows) < 20 {
			b.Fatalf("figure 4 covered %d tools", len(t.Rows))
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure5(benchOpts())
		if len(t.Rows) == 0 {
			b.Fatal("figure 5 produced no rows")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure6(benchOpts())
		if len(t.Rows) == 0 {
			b.Fatal("figure 6 produced no rows")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure7(benchOpts())
		if len(t.Rows) == 0 {
			b.Fatal("figure 7 produced no rows")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure8(benchOpts()) // rows may be empty at tiny budgets
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure9(benchOpts())
		if len(t.Rows) == 0 {
			b.Fatal("figure 9 produced no rows")
		}
	}
}

func BenchmarkFFSuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.FFStat(benchOpts())
	}
}

// BenchmarkSpectrum runs the §2.2 design-space sweep (none / function
// summaries / SSM / DSM) on the call-heavy tools.
func BenchmarkSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Spectrum(benchOpts())
		if len(t.Rows) == 0 {
			b.Fatal("spectrum produced no rows")
		}
	}
}

// --- Engine micro-benchmarks (ablations) ---

// benchEcho runs echo exhaustively under one configuration.
func benchEcho(b *testing.B, mut func(*symx.Config)) {
	tool, err := coreutils.Get("echo")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := symx.Config{NArgs: 2, ArgLen: 3, Seed: 1}
		mut(&cfg)
		res := symx.Run(prog, cfg)
		if !res.Completed {
			b.Fatal("exploration did not complete")
		}
	}
}

func BenchmarkEchoNoMerge(b *testing.B) {
	benchEcho(b, func(cfg *symx.Config) { cfg.Merge = symx.MergeNone })
}

func BenchmarkEchoSSMQCE(b *testing.B) {
	benchEcho(b, func(cfg *symx.Config) {
		cfg.Merge = symx.MergeSSM
		cfg.UseQCE = true
	})
}

func BenchmarkEchoSSMMergeAll(b *testing.B) {
	benchEcho(b, func(cfg *symx.Config) { cfg.Merge = symx.MergeSSM })
}

func BenchmarkEchoDSMQCE(b *testing.B) {
	benchEcho(b, func(cfg *symx.Config) {
		cfg.Merge = symx.MergeDSM
		cfg.UseQCE = true
	})
}

// BenchmarkEchoSSMQCEFullVariant measures the §3.3 full cost model (ζ > 1),
// the variant the paper describes but leaves out of its prototype: it
// additionally charges merges that introduce ite expressions.
func BenchmarkEchoSSMQCEFullVariant(b *testing.B) {
	benchEcho(b, func(cfg *symx.Config) {
		cfg.Merge = symx.MergeSSM
		cfg.UseQCE = true
		cfg.QCE = symx.DefaultQCEParams()
		cfg.QCE.Zeta = 4
	})
}

// BenchmarkMergeModes sweeps the design space of §2.2 on a call-heavy
// workload (per-argument classification through a branching helper): no
// merging, function summaries (MergeFunc), static merging, and dynamic
// merging, each the paper's named point in the spectrum between search-based
// symbolic execution and verification condition generation.
func BenchmarkMergeModes(b *testing.B) {
	const src = `
int classify(byte c) {
    if (c == '-') { return 0; }
    if (c < '0') { return 1; }
    if (c > '9') { return 2; }
    return 3;
}
void main() {
    int total = 0;
    for (int arg = 1; arg < argc(); arg++) {
        for (int i = 0; argchar(arg, i) != 0; i++) {
            total = total + classify(argchar(arg, i));
        }
    }
    if (total > 4) { putchar('+'); } else { putchar('-'); }
    putchar('\n');
}
`
	prog, err := symx.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		cfg  symx.Config
	}{
		{"none", symx.Config{Merge: symx.MergeNone}},
		{"func-summaries", symx.Config{Merge: symx.MergeFunc}},
		{"func-summaries-qce", symx.Config{Merge: symx.MergeFunc, UseQCE: true}},
		{"ssm-qce", symx.Config{Merge: symx.MergeSSM, UseQCE: true}},
		{"dsm-qce", symx.Config{Merge: symx.MergeDSM, UseQCE: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := m.cfg
				cfg.NArgs, cfg.ArgLen, cfg.Seed = 2, 2, 1
				res := symx.Run(prog, cfg)
				if !res.Completed {
					b.Fatal("exploration did not complete")
				}
			}
		})
	}
}

// BenchmarkSessionAblation is the end-to-end companion of the solver-level
// BenchmarkSessionVsOneShot: a full echo exploration with the incremental
// solver sessions on (default) and off. The session arm answers the
// feasibility queries of each state lineage from one persistent blast-once
// SAT instance; the one-shot arm re-blasts the path condition per query.
func BenchmarkSessionAblation(b *testing.B) {
	tool, err := coreutils.Get("echo")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			res := symx.Run(prog, symx.Config{
				NArgs: 2, ArgLen: 5, Seed: 1,
				Merge: symx.MergeDSM, UseQCE: true,
				DisableSessions: disable,
			})
			if !res.Completed {
				b.Fatal("exploration did not complete")
			}
			if !disable && res.Stats.Solver.SessionQueries == 0 {
				b.Fatal("session arm answered no queries incrementally")
			}
		}
	}
	b.Run("session", func(b *testing.B) { run(b, false) })
	b.Run("one-shot", func(b *testing.B) { run(b, true) })
}

// BenchmarkParallelScaling explores one branch-heavy workload exhaustively
// at 1/2/4/8 workers, charting the worker-pool scaling curve (the figure
// companion is `paperbench -figure scaling`, which sweeps the whole
// COREUTILS suite and verifies result equality). Per-iteration results are
// checked against the sequential paths-multiplicity so a sharding bug can
// never masquerade as a speedup. Scaling requires hardware parallelism:
// on a single-core runner the curve is flat and that is the correct
// reading, not a regression.
func BenchmarkParallelScaling(b *testing.B) {
	tool, err := coreutils.Get("base64")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		b.Fatal(err)
	}
	baseline := symx.Run(prog, symx.Config{NArgs: 2, ArgLen: 3, Seed: 1})
	if !baseline.Completed {
		b.Fatal("baseline exploration did not complete")
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := symx.Run(prog, symx.Config{NArgs: 2, ArgLen: 3, Seed: 1, Workers: w})
				if !res.Completed {
					b.Fatal("exploration did not complete")
				}
				if res.Stats.PathsMult.Cmp(baseline.Stats.PathsMult) != 0 {
					b.Fatalf("workers=%d found %s paths, sequential found %s",
						w, res.Stats.PathsMult, baseline.Stats.PathsMult)
				}
			}
		})
	}
}

// BenchmarkPreprocessPipeline compares a merged-state workload with the
// solver's preprocessing pipeline (simplify + equality substitution +
// independence slicing over canonical n-ary constraints) on vs off.
// Sessions are disabled so every query takes the one-shot path the
// pipeline preprocesses; the reported enc/query metric is the SAT
// variables+clauses emitted per top-level query, the number the pipeline
// exists to shrink. Results must be identical across the two arms.
func BenchmarkPreprocessPipeline(b *testing.B) {
	tool, err := coreutils.Get("echo")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		b.Fatal(err)
	}
	cfg := symx.Config{
		NArgs: 2, ArgLen: 4, Seed: 1,
		Merge: symx.MergeSSM, UseQCE: true,
		DisableSessions: true,
	}
	cfg.Preprocess = "off"
	baseline := symx.Run(prog, cfg)
	if !baseline.Completed {
		b.Fatal("baseline exploration did not complete")
	}
	for _, spec := range []string{"off", "on"} {
		b.Run(spec, func(b *testing.B) {
			var vars, clauses, queries uint64
			for i := 0; i < b.N; i++ {
				run := cfg
				run.Preprocess = spec
				res := symx.Run(prog, run)
				if !res.Completed {
					b.Fatal("exploration did not complete")
				}
				if res.Stats.PathsMult.Cmp(baseline.Stats.PathsMult) != 0 {
					b.Fatalf("preprocess=%s changed the explored paths: %s vs %s",
						spec, res.Stats.PathsMult, baseline.Stats.PathsMult)
				}
				vars += res.Stats.Solver.SATVars
				clauses += res.Stats.Solver.SATClauses
				queries += res.Stats.Solver.Queries
			}
			if queries > 0 {
				b.ReportMetric(float64(vars+clauses)/float64(queries), "enc/query")
			}
		})
	}
}

// BenchmarkSolverAblation compares the engine with and without the
// KLEE-style solver optimizations the paper's baseline depends on.
func BenchmarkSolverAblation(b *testing.B) {
	tool, err := coreutils.Get("sleep")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			res := symx.Run(prog, symx.Config{
				NArgs: 2, ArgLen: 2, Seed: 1,
				DisableSolverOpts: disable,
			})
			if !res.Completed {
				b.Fatal("did not complete")
			}
		}
	}
	b.Run("optimized", func(b *testing.B) { run(b, false) })
	b.Run("no-caches", func(b *testing.B) { run(b, true) })
}
