package symx

// Differential tests for persistent domains: a store-backed Domain is a
// pure execution-cost optimization, so a warm-store run must produce the
// byte-identical canonical corpus and the same invariant census as both a
// cold-store run and a plain run with no domain at all, in every merging
// regime and at any worker count. Persistence may only change speed —
// never results. The matrix here pins exactly that, and additionally
// asserts the warm run demonstrably used the store (otherwise the test
// would pass vacuously with persistence disconnected).

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"symmerge/internal/corpus"
	"symmerge/internal/store"
)

// runDomainArm runs cfg with corpus emission into dir, optionally inside
// dom, and fails the test on any incomplete or refused run.
func runDomainArm(t *testing.T, p *Program, cfg Config, label, dir string, dom *Domain) *Result {
	t.Helper()
	cfg.CollectTests = true
	cfg.CanonicalTests = true
	if cfg.MaxTests == 0 {
		cfg.MaxTests = 1 << 20
	}
	if cfg.Merge != MergeNone {
		cfg.TrackExactPaths = true
	}
	cfg.CorpusDir = dir
	cfg.Domain = dom
	if dom != nil {
		dom.Acquire()
		defer dom.Release()
	}
	res := Run(p, cfg)
	if res.ConfigErr != nil {
		t.Fatalf("%s: config refused: %v", label, res.ConfigErr)
	}
	if !res.Completed {
		t.Fatalf("%s: incomplete exploration", label)
	}
	if res.CorpusErr != nil {
		t.Fatalf("%s: corpus emission: %v", label, res.CorpusErr)
	}
	return res
}

// requireSameObservables asserts the census invariants between two runs of
// the same config: exact path census (or raw multiplicity when nothing
// merges), error count, coverage mask, and the canonical input→behavior
// map.
func requireSameObservables(t *testing.T, label string, merge MergeMode, a, b *Result) {
	t.Helper()
	if merge == MergeNone {
		if a.Stats.PathsMult.Cmp(b.Stats.PathsMult) != 0 {
			t.Fatalf("%s: multiplicity %s vs %s", label, a.Stats.PathsMult, b.Stats.PathsMult)
		}
	} else if a.Stats.ExactPaths != b.Stats.ExactPaths {
		t.Fatalf("%s: exact census %d vs %d", label, a.Stats.ExactPaths, b.Stats.ExactPaths)
	}
	if a.Stats.ErrorsFound != b.Stats.ErrorsFound {
		t.Fatalf("%s: errors %d vs %d", label, a.Stats.ErrorsFound, b.Stats.ErrorsFound)
	}
	if len(a.CoverageMask) != len(b.CoverageMask) {
		t.Fatalf("%s: coverage mask length %d vs %d", label, len(a.CoverageMask), len(b.CoverageMask))
	}
	for i := range a.CoverageMask {
		if a.CoverageMask[i] != b.CoverageMask[i] {
			t.Fatalf("%s: coverage diverges at loc index %d", label, i)
		}
	}
	ba, bb := behavior(t, a), behavior(t, b)
	if len(ba) != len(bb) {
		t.Fatalf("%s: %d canonical inputs vs %d", label, len(ba), len(bb))
	}
	for id, want := range ba {
		if got, ok := bb[id]; !ok {
			t.Fatalf("%s: input %s missing", label, id)
		} else if got != want {
			t.Fatalf("%s: input %s behavior %s vs %s", label, id, want, got)
		}
	}
}

func digestOf(t *testing.T, label, dir string) string {
	t.Helper()
	d, err := corpus.DirDigest(dir)
	if err != nil {
		t.Fatalf("%s: digest %s: %v", label, dir, err)
	}
	return d
}

// TestDomainColdWarmDifferential: for every regime × worker count, three
// arms over the same program — no domain at all, a cold store-backed
// domain, and a warm domain rehydrated from a reopened copy of that store
// — must emit byte-identical corpus directories and agree on the whole
// census. The warm arm must additionally show store traffic: whole-query
// or group-level stable hits in the solver, lookup hits in the store, and
// (where summaries recorded anything) seeded summaries in the domain.
func TestDomainColdWarmDifferential(t *testing.T) {
	p, err := Compile(summaryCallSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	regimes := []struct {
		name  string
		merge MergeMode
		qce   bool
	}{
		{"none", MergeNone, false},
		{"ssm+qce", MergeSSM, true},
		{"dsm+qce", MergeDSM, true},
	}
	for _, reg := range regimes {
		for _, workers := range []int{1, 8} {
			label := fmt.Sprintf("%s/w%d", reg.name, workers)
			t.Run(label, func(t *testing.T) {
				cfg := Config{
					NArgs: 2, ArgLen: 2,
					Merge:     reg.merge,
					UseQCE:    reg.qce,
					Workers:   workers,
					Summaries: true,
					MaxTime:   30 * time.Second,
				}
				tmp := t.TempDir()
				storeDir := filepath.Join(tmp, "store")

				plain := runDomainArm(t, p, cfg, label+"/plain", filepath.Join(tmp, "plain"), nil)

				st, err := store.Open(storeDir, store.Options{})
				if err != nil {
					t.Fatalf("open store: %v", err)
				}
				coldDom := NewDomain(st)
				cold := runDomainArm(t, p, cfg, label+"/cold", filepath.Join(tmp, "cold"), coldDom)
				if _, err := coldDom.Flush(); err != nil {
					t.Fatalf("flush: %v", err)
				}

				// Reopen the store from disk — the warm arm must get its
				// knowledge through the persistence round-trip, not from
				// shared process memory.
				st2, err := store.Open(storeDir, store.Options{})
				if err != nil {
					t.Fatalf("reopen store: %v", err)
				}
				warmDom := NewDomain(st2)
				warm := runDomainArm(t, p, cfg, label+"/warm", filepath.Join(tmp, "warm"), warmDom)

				dPlain := digestOf(t, label, filepath.Join(tmp, "plain"))
				dCold := digestOf(t, label, filepath.Join(tmp, "cold"))
				dWarm := digestOf(t, label, filepath.Join(tmp, "warm"))
				if dCold != dPlain {
					t.Errorf("%s: cold-domain corpus digest %s != plain %s", label, dCold, dPlain)
				}
				if dWarm != dCold {
					t.Errorf("%s: warm corpus digest %s != cold %s", label, dWarm, dCold)
				}
				requireSameObservables(t, label+"/plain-vs-cold", reg.merge, plain, cold)
				requireSameObservables(t, label+"/cold-vs-warm", reg.merge, cold, warm)

				// The warm run must demonstrably consult the store.
				stableHits := warm.Stats.Solver.StableHits + warm.Stats.Solver.StableGroupHits
				if stableHits == 0 {
					t.Errorf("%s: warm run answered no query from the persistent store", label)
				}
				if warmDom.WarmHits() == 0 {
					t.Errorf("%s: store recorded no lookup hits on the warm run", label)
				}
				if cold.Stats.SummaryRecords > 0 && warmDom.SeededSummaries == 0 {
					t.Errorf("%s: cold run recorded %d summaries but warm domain seeded none",
						label, cold.Stats.SummaryRecords)
				}
			})
		}
	}
}

// TestDomainInMemorySharing: a store-less domain still shares one builder
// and both caches across successive runs — the second run of the same
// program must hit the in-process cex cache without any store attached.
func TestDomainInMemorySharing(t *testing.T) {
	p, err := Compile(summaryCallSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dom := NewDomain(nil)
	cfg := Config{NArgs: 2, ArgLen: 2, Summaries: true, MaxTime: 30 * time.Second}
	first := runDomainArm(t, p, cfg, "first", t.TempDir(), dom)
	second := runDomainArm(t, p, cfg, "second", t.TempDir(), dom)
	requireSameObservables(t, "in-memory", MergeNone, first, second)
	if second.Stats.Solver.CacheHits <= first.Stats.Solver.CacheHits &&
		second.Stats.Solver.SATCalls >= first.Stats.Solver.SATCalls {
		t.Errorf("second run shows no sharing benefit: hits %d→%d, SAT calls %d→%d",
			first.Stats.Solver.CacheHits, second.Stats.Solver.CacheHits,
			first.Stats.Solver.SATCalls, second.Stats.Solver.SATCalls)
	}
	if dom.WarmHits() != 0 {
		t.Errorf("store-less domain reported %d warm hits", dom.WarmHits())
	}
	if dom.SeededSummaries != 0 {
		t.Errorf("store-less domain seeded %d summaries", dom.SeededSummaries)
	}
}
