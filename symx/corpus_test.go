package symx

// Corpus-level properties of canonical test generation: search-strategy
// parity of the deduplicated input set, and the write → read → replay
// round-trip fuzz target over random MiniC programs.

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symmerge/internal/corpus"
)

// inputSet reduces a test list to its deduplicated input identity set.
func inputSet(tests []TestCase) map[string]bool {
	out := make(map[string]bool, len(tests))
	for _, tc := range tests {
		out[corpus.InputID(tc.Args, tc.Stdin)] = true
	}
	return out
}

// TestSearchStrategyParity: on loop-free programs, every driving strategy
// explores the same finite path set, so with canonical test generation the
// deduplicated test-input set must be identical across DFS, BFS, random,
// coverage-guided, and topological search. An arbitrary-model test
// generator fails this immediately — models drift with query order — which
// is exactly why the corpus pipeline pins canonical minimal models.
func TestSearchStrategyParity(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	gen := &progGen{rng: rng, noLoops: true}
	strategies := []Strategy{StrategyDFS, StrategyBFS, StrategyRandom, StrategyCoverage, StrategyTopo}
	checked := 0
	for iter := 0; iter < 25; iter++ {
		src := gen.generate(5 + rng.Intn(5))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		results := make([]*Result, len(strategies))
		done := true
		for i, st := range strategies {
			results[i] = Run(p, Config{
				NArgs: 1, ArgLen: 2,
				Strategy:       st,
				Seed:           int64(iter),
				CollectTests:   true,
				CanonicalTests: true,
				MaxTests:       1 << 20,
				MaxTime:        10 * time.Second,
			})
			if !results[i].Completed {
				done = false
				break
			}
		}
		if !done {
			continue
		}
		checked++
		ref := inputSet(results[0].Tests)
		for i := 1; i < len(strategies); i++ {
			got := inputSet(results[i].Tests)
			if len(got) != len(ref) {
				t.Fatalf("iter %d: %s produced %d unique inputs, %s produced %d\n%s",
					iter, strategies[0], len(ref), strategies[i], len(got), src)
			}
			for id := range ref {
				if !got[id] {
					t.Fatalf("iter %d: input %s found by %s but not by %s\n%s",
						iter, id, strategies[0], strategies[i], src)
				}
			}
		}
	}
	if checked < 15 {
		t.Fatalf("only %d programs fully checked", checked)
	}
}

// FuzzCorpusRoundTrip: emit a corpus for a random program under merging,
// read it back (decode validation), re-marshal each test (byte identity
// with the on-disk form), and replay it through the IR interpreter — any
// decode divergence, expectation mismatch, or coverage-parity failure is a
// bug in the pipeline.
func FuzzCorpusRoundTrip(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 20260730} {
		f.Add(seed)
	}
	// Heap-program seed corpus: these seeds make progGen allocate a heap
	// buffer and address it through data-dependent pointer offsets, so the
	// fuzz round-trip keeps covering the symbolic heap (alloc addressing,
	// guarded pointer stores, interpreter replay) from the first exec on.
	for _, seed := range []int64{2, 5, 101, 4096} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		gen := &progGen{rng: rng}
		src := gen.generate(4 + rng.Intn(6))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program does not compile: %v\n%s", err, src)
		}
		dir := t.TempDir()
		res := Run(p, Config{
			NArgs: 1, ArgLen: 2,
			Merge: MergeSSM, UseQCE: true,
			CorpusDir:   dir,
			CorpusLabel: "fuzz",
			MaxTests:    1 << 20,
			MaxTime:     10 * time.Second,
		})
		if res.CorpusErr != nil {
			t.Fatalf("corpus emission: %v\n%s", res.CorpusErr, src)
		}
		if !res.Completed {
			t.Skip("program too big for the fuzz budget")
		}

		man, tests, err := corpus.Load(dir)
		if err != nil {
			t.Fatalf("load: %v\n%s", err, src)
		}
		if len(tests) != res.Stats.TestsEmitted-res.Stats.TestsDeduped {
			t.Fatalf("loaded %d tests, writer reported %d unique",
				len(tests), res.Stats.TestsEmitted-res.Stats.TestsDeduped)
		}
		// Decode → encode must reproduce the stored bytes exactly.
		for i, tc := range tests {
			disk, err := os.ReadFile(filepath.Join(dir, man.Tests[i].File))
			if err != nil {
				t.Fatal(err)
			}
			enc, err := json.MarshalIndent(tc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(append(enc, '\n')) != string(disk) {
				t.Fatalf("test %s: decode/encode round trip not byte-identical\n%s", tc.ID, src)
			}
		}

		rep, err := corpus.Replay(dir, p.Internal())
		if err != nil {
			t.Fatalf("replay: %v\n%s", err, src)
		}
		for _, m := range rep.Mismatches {
			t.Errorf("replay divergence: %s\n%s", m, src)
		}
		if !rep.ParityOK() {
			t.Errorf("coverage parity failed: %d missing, %d extra locations\n%s",
				len(rep.MissingLocs), len(rep.ExtraLocs), src)
		}
	})
}
