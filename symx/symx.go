// Package symx is the public API of symmerge: compile a MiniC program and
// explore it symbolically with configurable state merging.
//
// The package reproduces the system of "Efficient State Merging in Symbolic
// Execution" (Kuznetsov, Kinder, Bucur, Candea; PLDI 2012): a search-based
// symbolic execution engine in the style of KLEE, extended with query count
// estimation (QCE) and dynamic state merging (DSM).
//
// A minimal session:
//
//	prog, err := symx.Compile(src)
//	if err != nil { ... }
//	res := symx.Run(prog, symx.Config{
//		NArgs: 2, ArgLen: 2,
//		Merge: symx.MergeDSM, UseQCE: true,
//		Strategy: symx.StrategyCoverage,
//	})
//	fmt.Println(res.Stats.PathsMult, res.Stats.Coverage())
package symx

import (
	"context"
	"fmt"
	"math/big"
	"os"
	"sync"
	"time"

	"symmerge/internal/analysis"
	"symmerge/internal/core"
	"symmerge/internal/corpus"
	"symmerge/internal/expr"
	"symmerge/internal/ir"
	"symmerge/internal/lang"
	"symmerge/internal/obs"
	"symmerge/internal/parallel"
	"symmerge/internal/qce"
	"symmerge/internal/search"
	"symmerge/internal/solver"
	"symmerge/internal/summary"
)

// Program is a compiled MiniC program ready for symbolic exploration.
type Program struct {
	ir *ir.Program

	anOnce sync.Once
	an     *analysis.Program
}

// staticFacts computes the program's dataflow facts (intervals, branch
// verdicts, liveness, heap effects) once per Program; every run, worker,
// and portfolio entry shares the same immutable tables.
func (p *Program) staticFacts() *analysis.Program {
	p.anOnce.Do(func() { p.an = analysis.Analyze(p.ir) })
	return p.an
}

// Compile parses and compiles MiniC source.
func Compile(src string) (*Program, error) {
	p, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Program{ir: p}, nil
}

// MustCompile is Compile for known-good sources (registry, tests).
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// IR returns the disassembled intermediate representation.
func (p *Program) IR() string { return p.ir.String() }

// Internal exposes the underlying ir.Program to sibling internal packages
// via the bench harness; external users should not depend on its shape.
func (p *Program) Internal() *ir.Program { return p.ir }

// MergeMode selects the merging regime.
type MergeMode = core.MergeMode

// Merge modes re-exported from the engine.
const (
	MergeNone = core.MergeNone
	MergeSSM  = core.MergeSSM
	MergeDSM  = core.MergeDSM
	// MergeFunc merges only at function-exit join points, realizing
	// precise symbolic function summaries (paper §2.2).
	MergeFunc = core.MergeFunc
)

// Strategy names a driving search strategy.
type Strategy = search.Kind

// Strategies re-exported from the search package.
const (
	StrategyDFS      = search.DFS
	StrategyBFS      = search.BFS
	StrategyRandom   = search.Random
	StrategyCoverage = search.Coverage
	StrategyTopo     = search.Topo
)

// QCEParams re-exports the QCE tuning knobs.
type QCEParams = qce.Params

// DefaultQCEParams returns the default parameter values: β=0.8 and κ=10 as
// published, and α=0.5 from the paper's worked example (see
// qce.DefaultParams for why the production tuning α=1e-12 does not transfer
// to a precise dependence analysis).
func DefaultQCEParams() QCEParams { return qce.DefaultParams() }

// Config configures an exploration run.
type Config struct {
	// Merge selects none (plain symbolic execution), static state
	// merging, or dynamic state merging.
	Merge MergeMode
	// UseQCE gates merging with the QCE similarity relation; when false,
	// all same-location states merge.
	UseQCE bool
	// QCE are the heuristic parameters; zero value means defaults.
	QCE QCEParams

	// Strategy is the driving search heuristic. Defaults: Topo when
	// Merge == MergeSSM, DFS otherwise.
	Strategy Strategy
	// Seed feeds the randomized strategies.
	Seed int64

	// NArgs symbolic command-line arguments of up to ArgLen characters
	// each (zero-terminated), plus StdinLen symbolic stdin bytes.
	NArgs    int
	ArgLen   int
	StdinLen int

	// ConcreteArgs/ConcreteStdin pin the environment to constants
	// instead, making the engine a reference interpreter (exactly one
	// feasible path per run). Useful for replaying generated test cases
	// and for conformance-testing programs.
	ConcreteArgs  [][]byte
	ConcreteStdin []byte

	// DSMDelta is the fast-forwarding distance δ in basic blocks
	// (default 8, the paper's value).
	DSMDelta int

	// Budgets; zero = unlimited.
	MaxSteps  uint64
	MaxTime   time.Duration
	MaxStates int

	// Workers shards the exploration across this many goroutines (the
	// internal/parallel subsystem): each worker runs its own engine over
	// subtrees claimed from a shared frontier with work-stealing, while
	// the expression builder and the counterexample cache are shared
	// race-clean. 0 or 1 explores single-threaded. Sharding never changes
	// the explored path set: paths-multiplicity, coverage, and the set of
	// errors found match the single-threaded run on exhaustive
	// explorations (only the count of separately completed states may
	// differ, since merging is worker-local). Budgets shard with the
	// work: MaxSteps and MaxStates are divided evenly across workers
	// (keeping them total-work and total-memory bounds), and MaxTime is a
	// shared deadline; a worker that exhausts its own share retires while
	// the others keep spending theirs.
	Workers int

	// Context, when non-nil, cancels the exploration early (Ctrl-C,
	// portfolio losers). The engine polls it on the deadline cadence and
	// returns with Completed=false.
	Context context.Context

	// Portfolio, when non-empty, races the given complete configurations
	// concurrently over the same program: the first to finish its
	// exploration wins and the losers are cancelled via context. The
	// winning entry's index is reported in Result.PortfolioWinner. The
	// outer Config's other fields are ignored (each entry is complete);
	// nested portfolios are stripped.
	Portfolio []Config

	// CheckBounds turns out-of-bounds array accesses into path errors.
	CheckBounds bool
	// CollectTests solves for a concrete test case at every path end.
	CollectTests bool
	// CanonicalTests derives each test from the lexicographically minimal
	// model of its path instead of an arbitrary solver model, and — when
	// the shadow census is on — emits one test per constituent single path
	// of a merged state. Canonical tests are a pure function of the
	// explored path set: worker count, search strategy, and solver cache
	// state cannot change them. Implied by CorpusDir.
	CanonicalTests bool
	// MaxTests bounds recorded test cases and errors (0 = 256).
	MaxTests int

	// CorpusDir, when non-empty, streams every generated test case to an
	// on-disk corpus at that directory (internal/corpus format: one JSON
	// file per test named by input hash, plus manifest.json) and implies
	// CollectTests and CanonicalTests — plus TrackExactPaths under a
	// merging regime, so merged states contribute one test per constituent
	// path and replay coverage can match symbolic coverage exactly. All
	// run shapes emit: sequential, parallel (workers share one writer),
	// and portfolio (the winner's tests are written). A writer that cannot
	// even be created (non-replayable program, unwritable directory) fails
	// the run up front with an empty Result carrying CorpusErr; emission
	// failures during or after the run land in Result.CorpusErr with the
	// exploration result intact.
	CorpusDir string
	// CorpusLabel names the program in the corpus manifest (tool name or
	// source file); informational only.
	CorpusLabel string

	// CheckpointDir, when non-empty, makes the run crash-safe: the driver
	// explores in epochs of CheckpointEvery, writing a versioned snapshot
	// (internal/checkpoint format) of the live frontier, the cumulative
	// progress counters, and the corpus writer's dedup state at every epoch
	// boundary and on cancellation. A killed run resumed with Resume
	// converges to the same census and corpus as an uninterrupted one.
	// Incompatible with Portfolio (a race's winner is wall-clock
	// nondeterministic, so its snapshot could not promise a deterministic
	// resume); refused up front via Result.ConfigErr.
	CheckpointDir string
	// CheckpointEvery is the snapshot interval (default 30s).
	CheckpointEvery time.Duration
	// Resume, with CheckpointDir set, restores the newest valid snapshot in
	// the directory before exploring — validating it against the current
	// program IR hash and configuration descriptor — and continues from its
	// frontier. With no usable snapshot the run simply starts fresh.
	// Budgets (MaxSteps, MaxTime) are per-invocation, not per logical run.
	Resume bool
	// TrackExactPaths maintains the shadow single-path census alongside
	// merged states (paper §5.2; used for Figure 3).
	TrackExactPaths bool

	// Summaries enables compositional function summaries (README
	// "Compositional summaries"): per-callee path summaries are recorded
	// once per symbolic input class and later call sites are discharged
	// as assume-summary session queries instead of re-exploring the
	// callee. Purely an execution-cost optimization — corpus output,
	// census, coverage, and errors found are byte-identical with it on
	// or off. Ineligible callees (recursion, heap operations, fresh
	// symbolic inputs, oversized or solver-failed recordings, aliased
	// array arguments) fall back to inline exploration; incompatible
	// with CheckBounds (bounds errors are engine analyses of the calling
	// context, so the engine ignores the cache there).
	Summaries bool
	// SummaryMaxSteps bounds one summary recording (default 4096 engine
	// steps); a callee whose exploration exceeds it is negatively cached
	// and explored inline.
	SummaryMaxSteps uint64
	// SummaryDomain, with Summaries set, supplies the shared expression
	// builder and summary cache (NewSummaryDomain) so several runs — the
	// tools of a benchmark suite, repeated invocations over the same
	// program family — reuse each other's summaries. Nil gets a fresh
	// per-run domain. For a Portfolio, set Summaries/SummaryDomain on the
	// entries (outer fields are ignored there).
	SummaryDomain *SummaryDomain

	// Domain, when non-nil, runs the exploration inside a long-lived
	// shared domain (NewDomain): every run interns expressions into the
	// domain's builder and shares its counterexample cache — backed by the
	// domain's persistent store when it has one — and, with Summaries set,
	// its summary cache (overriding SummaryDomain). This is how cmd/symxd
	// makes repeat traffic cheap: verdicts and summaries recorded by any
	// job answer queries in every later job. Persistence is invisible in
	// the results — corpus output, census, coverage, and errors are
	// byte-identical with a cold or warm domain — because cached verdicts
	// are deterministic facts about constraint sets and canonical tests
	// derive from verdicts alone. For a Portfolio, set Domain on the
	// entries (outer fields are ignored there).
	Domain *Domain

	// DisableAnalysis turns off the static dataflow analyses (interval
	// branch pruning, bounds-check elision, liveness merge slimming; see
	// internal/analysis and README "Static analysis") for ablation
	// measurements. The analyses are on by default and sound: corpus
	// output, census, coverage, and errors are byte-identical with them
	// on or off — only the query counts and wall-clock differ.
	DisableAnalysis bool

	// CrossCheckAnalysis re-validates every statically pruned branch side
	// with a solver query and panics if the solver disagrees (the pruned
	// side was satisfiable). Purely a soundness test harness — it spends
	// the very queries pruning exists to avoid.
	CrossCheckAnalysis bool

	// DisableSolverOpts turns off the KLEE-style solver optimizations
	// (counterexample cache, independence slicing, model reuse) for
	// ablation measurements.
	DisableSolverOpts bool

	// DisableSessions turns off the incremental solver sessions (the
	// blast-once/assume-many SAT instances shared along state lineages)
	// for ablation measurements; every query then re-blasts one-shot.
	DisableSessions bool

	// Preprocess selects the solver's preprocessing-pass pipeline (the
	// rewrites applied to one-shot queries before bit-blasting): "" or
	// "on" runs the default pipeline (simplify, equality substitution,
	// independence slicing), "off"/"none" disables it — the ablation
	// baseline — and a comma-separated list of pass names
	// ("simplify,subst-eq,slice") runs a custom pipeline in that order.
	// Validate CLI input with ParsePreprocess.
	Preprocess string

	// TraceFile, when non-empty, streams a structured JSONL event trace
	// (schema symmerge-trace/v1; see internal/obs and README
	// "Observability") of the exploration to that path: forks, merge
	// decisions with the QCE numbers behind them, solver queries with
	// class and latency, fast-forward picks, work-stealing, epochs and
	// checkpoints. The sink never blocks a worker: events beyond the
	// buffer are dropped and counted in Result.TraceDrops. Tracing is
	// purely observational — corpus output and census are byte-identical
	// with it on or off. A path that cannot be created refuses the run up
	// front via Result.ConfigErr.
	TraceFile string
	// TraceBuffer overrides the trace sink's event buffer capacity
	// (default obs.DefaultBuffer = 4096 events).
	TraceBuffer int
	// Metrics, when non-nil, receives live counters and latency
	// histograms from every engine of the run (see NewMetrics,
	// PublishMetrics). Safe to Snapshot concurrently with the run.
	Metrics *Metrics
	// Monitor, when non-nil, gets every engine the run builds attached
	// for live aggregate progress (Monitor.Progress); cmd/symx serves it
	// at -debug-addr /progress.
	Monitor *Monitor

	// obsRun is the resolved observability plumbing (trace sink + metrics)
	// Run threads down to the engines; portfolio entries inherit it.
	obsRun *obs.Run
}

// SummaryDomain bundles the expression builder and summary cache that
// summary-enabled runs share. Summaries store expressions, so a cache is
// only meaningful together with the builder that hash-conses them; keeping
// the pair opaque makes it impossible to share one without the other. Both
// halves are safe for concurrent use by any number of runs.
type SummaryDomain struct {
	build *expr.Builder
	cache *summary.Cache
}

// NewSummaryDomain creates a fresh shared summary domain.
func NewSummaryDomain() *SummaryDomain {
	return &SummaryDomain{build: expr.NewBuilder(), cache: summary.NewCache()}
}

// ParsePreprocess validates a Config.Preprocess spec, returning an error
// for unknown pass names. "" and "on" select the default pipeline,
// "off"/"none" disable preprocessing.
func ParsePreprocess(spec string) error {
	_, err := solver.ParsePasses(spec)
	return err
}

// Result re-exports the engine result.
type Result = core.Result

// Stats re-exports the engine statistics.
type Stats = core.Stats

// TestCase re-exports generated test cases.
type TestCase = core.TestCase

// PathError re-exports path errors.
type PathError = core.PathError

// Interrupted re-exports the early-stop cause enum, with its values, so
// embedders (cmd/symxd) can distinguish a resumable checkpoint stop from a
// plain cancellation without importing internal/core.
type Interrupted = core.Interrupted

const (
	IntrNone       = core.IntrNone
	IntrBudget     = core.IntrBudget
	IntrContext    = core.IntrContext
	IntrCheckpoint = core.IntrCheckpoint
)

// Run explores the program under the configuration and returns the result.
// With Workers > 1 the exploration is sharded across a worker pool
// (internal/parallel); with a non-empty Portfolio the configurations race
// and the first to finish wins.
//
// An invalid configuration — an unknown Strategy, in the outer config or any
// portfolio entry — is refused up front: the returned (otherwise empty)
// result carries the problem in Result.ConfigErr instead of silently
// exploring under a fallback strategy.
func Run(p *Program, cfg Config) *Result {
	if err := validateConfig(cfg); err != nil {
		res := &Result{PortfolioWinner: -1, ConfigErr: err}
		res.Stats.PathsMult = big.NewInt(0)
		return res
	}
	var sink *obs.Sink
	if cfg.TraceFile != "" {
		f, err := os.Create(cfg.TraceFile)
		if err != nil {
			res := &Result{PortfolioWinner: -1, ConfigErr: fmt.Errorf("trace: %w", err)}
			res.Stats.PathsMult = big.NewInt(0)
			return res
		}
		sink = obs.NewSink(f, cfg.TraceBuffer)
	}
	cfg.obsRun = obs.NewRun(sink, cfg.Metrics)

	var res *Result
	if len(cfg.Portfolio) > 0 {
		res = runPortfolio(p, cfg)
	} else {
		res = runSingle(p, cfg)
	}
	if sink != nil {
		// Close after all emitters have returned: the footer's event/drop
		// totals are final, and the result carries them for callers that
		// never look at the file.
		res.TraceErr = sink.Close()
		res.TraceEvents = sink.Events()
		res.TraceDrops = sink.Drops()
	}
	return res
}

// validateConfig rejects configurations the engine layers would otherwise
// mis-handle silently. The empty Strategy is fine (coreConfig resolves it
// from the merge mode); anything else must name a known strategy.
func validateConfig(cfg Config) error {
	if err := validateEntry(cfg); err != nil {
		return err
	}
	if cfg.CheckpointDir != "" && len(cfg.Portfolio) > 0 {
		return fmt.Errorf("checkpoint: incompatible with a portfolio (the race winner is wall-clock nondeterministic, so a snapshot could not promise a deterministic resume)")
	}
	for i, sub := range cfg.Portfolio {
		if err := validateEntry(sub); err != nil {
			return fmt.Errorf("portfolio entry %d: %w", i, err)
		}
	}
	return nil
}

// validateEntry checks the per-configuration invariants shared by the outer
// config and portfolio entries.
func validateEntry(cfg Config) error {
	if cfg.Strategy != "" {
		if err := search.Validate(cfg.Strategy); err != nil {
			return err
		}
		if cfg.Merge == MergeFunc && cfg.Strategy != StrategyTopo {
			// Function-level merging folds callee paths at the return
			// point, which requires callee states to be exhausted before
			// the caller advances past the call — only the topological
			// order (deeper frames first) guarantees that. Any other
			// strategy silently under-merges: the run is sound but
			// measures something other than MergeFunc, so refuse it
			// rather than publish misleading numbers. Leave Strategy
			// empty to get the topological order automatically.
			return fmt.Errorf("merge=func requires the topological strategy (got %q): other worklist orders advance callers before their callees finish, so return-point merging silently degrades toward plain exploration; leave Strategy empty to auto-select topo", cfg.Strategy)
		}
	}
	return nil
}

// applyCorpusImplications turns on everything corpus emission needs: test
// collection, canonical minimal-model inputs, and — under a merging regime
// — the shadow census, so merged states contribute one test per
// constituent path.
func applyCorpusImplications(cfg Config) Config {
	cfg.CollectTests = true
	cfg.CanonicalTests = true
	if cfg.Merge != MergeNone {
		cfg.TrackExactPaths = true
	}
	return cfg
}

// emitToWriter streams one engine test case into a corpus writer, skipping
// error tests whose failure is an engine analysis (bounds checking, solver
// budget) rather than program semantics — those have no concrete-replay
// counterpart.
func emitToWriter(w *corpus.Writer, tc core.TestCase) {
	if tc.IsErr && !tc.Assert {
		w.SkipUnreplayable()
		return
	}
	w.Add(tc.Args, tc.Stdin, tc.Output, tc.Exit, tc.IsErr, tc.Msg)
}

// corpusFailure builds the well-formed empty result a run returns when its
// corpus writer cannot even be created (non-replayable program, unwritable
// directory): failing before the exploration beats discovering after a
// long run that nothing was persisted.
func corpusFailure(err error) *Result {
	res := &Result{PortfolioWinner: -1, CorpusErr: err}
	res.Stats.PathsMult = big.NewInt(0)
	return res
}

// configDescriptor renders the canonical producing-configuration string the
// corpus manifest records. Scheduling knobs (Workers, Context, budgets) are
// excluded on purpose: they must not change the corpus.
func configDescriptor(cfg Config, kind Strategy) string {
	return fmt.Sprintf("merge=%s qce=%v strategy=%s seed=%d nargs=%d arglen=%d stdin=%d",
		cfg.Merge, cfg.UseQCE, kind, cfg.Seed, cfg.NArgs, cfg.ArgLen, cfg.StdinLen)
}

// runSingle runs one configuration, sharded when cfg.Workers > 1.
func runSingle(p *Program, cfg Config) *Result {
	if cfg.CheckpointDir != "" {
		return runCheckpointed(p, cfg)
	}
	if cfg.CorpusDir != "" {
		cfg = applyCorpusImplications(cfg)
	}
	ccfg, kind, seed := coreConfig(p, cfg)

	var writer *corpus.Writer
	if cfg.CorpusDir != "" {
		var err error
		writer, err = corpus.NewWriter(cfg.CorpusDir, p.ir, cfg.CorpusLabel, configDescriptor(cfg, kind))
		if err != nil {
			return corpusFailure(err)
		}
		ccfg.TestSink = func(tc core.TestCase) { emitToWriter(writer, tc) }
	}

	factory := engineFactory(p, kind, seed, cfg.Monitor)
	var res *Result
	if cfg.Workers > 1 {
		res = parallel.Explore(p.ir, ccfg, parallel.Options{Workers: cfg.Workers}, factory)
	} else {
		res = factory(ccfg).Run()
	}
	if writer != nil {
		res.CorpusErr = finishCorpus(writer, res)
	}
	return res
}

// finishCorpus writes the manifest and fills the emission counters. A run
// that pruned states is recorded as incomplete (its manifest makes no
// parity promise), and dropped test generations (solver budget during the
// model solve) become the corpus error that explains a later parity gap.
func finishCorpus(writer *corpus.Writer, res *Result) error {
	exhaustive := res.Completed && res.Stats.Pruned == 0
	_, err := writer.Finalize(res.CoverageMask, exhaustive)
	res.Stats.TestsEmitted, res.Stats.TestsDeduped = writer.Counts()
	if err == nil && res.Stats.TestGenFailures > 0 {
		err = fmt.Errorf("corpus: %d path ends produced no test (solver budget during model extraction); the corpus under-represents the exploration", res.Stats.TestGenFailures)
	}
	return err
}

// runPortfolio races cfg.Portfolio's entries; see Config.Portfolio. With a
// CorpusDir the racing entries collect canonical tests in memory and the
// winner's set is written out after the race — losers leave no files.
func runPortfolio(p *Program, cfg Config) *Result {
	runs := make([]func(context.Context) *core.Result, len(cfg.Portfolio))
	entries := make([]Config, len(cfg.Portfolio))
	for i := range cfg.Portfolio {
		entry := cfg.Portfolio[i]
		entry.Portfolio = nil // no nesting
		entry.CorpusDir = ""  // the winner's tests are written post-race
		// Observability is a property of the race, not the entries: all
		// racers share the outer trace sink (their events carry distinct
		// worker lanes), metrics registry, and monitor.
		entry.obsRun = cfg.obsRun
		entry.TraceFile = ""
		entry.Metrics = cfg.Metrics
		if entry.Monitor == nil {
			entry.Monitor = cfg.Monitor
		}
		if cfg.CorpusDir != "" {
			entry = applyCorpusImplications(entry)
			if entry.MaxTests < 1<<20 {
				// The corpus is built from the winner's in-memory test
				// set here (the streaming sink cannot race), so any
				// smaller cap would silently truncate it and break the
				// coverage-parity guarantee.
				entry.MaxTests = 1 << 20
			}
		}
		entries[i] = entry
		runs[i] = func(ctx context.Context) *core.Result {
			sub := entries[i]
			sub.Context = ctx
			return runSingle(p, sub)
		}
	}
	idx, res := parallel.Portfolio(cfg.Context, runs)
	if res == nil {
		// Unreachable with a non-empty portfolio, but keep the API total.
		return runSingle(p, cfg.Portfolio[0])
	}
	res.PortfolioWinner = idx
	if cfg.CorpusDir != "" {
		res.CorpusErr = writePortfolioCorpus(p, cfg, entries[idx], res)
	}
	return res
}

// writePortfolioCorpus persists the winning entry's in-memory test set.
func writePortfolioCorpus(p *Program, outer, winner Config, res *Result) error {
	_, kind, _ := coreConfig(p, winner)
	writer, err := corpus.NewWriter(outer.CorpusDir, p.ir, outer.CorpusLabel, configDescriptor(winner, kind))
	if err != nil {
		return err
	}
	for _, tc := range res.Tests {
		emitToWriter(writer, tc)
	}
	return finishCorpus(writer, res)
}

// NewEngine exposes a prepared engine for callers that need incremental
// control (the bench harness samples stats mid-run). Single-threaded only:
// Workers and Portfolio are ignored here. An unknown cfg.Strategy panics —
// use Run for the error-reporting path.
func NewEngine(p *Program, cfg Config) *core.Engine {
	ccfg, kind, seed := coreConfig(p, cfg)
	return engineFactory(p, kind, seed, cfg.Monitor)(ccfg)
}

// engineFactory builds engines for a program: one call per parallel worker
// (plus the splitter), or a single call for a sequential run. Each engine
// gets its own driving strategy instance; shared pieces (builder, cache,
// QCE analysis) arrive through the core.Config. Every engine built is
// attached to mon (nil-safe) so a live Monitor sees all of them.
func engineFactory(p *Program, kind Strategy, seed int64, mon *Monitor) parallel.NewEngineFunc {
	return func(ccfg core.Config) *core.Engine {
		// The engine needs the strategy at construction, but the strategy
		// needs the engine as its context; break the cycle with a
		// forwarder.
		fwd := &ctxForwarder{}
		strat, err := search.New(kind, fwd, seed)
		if err != nil {
			// Run validated the strategy before building any engine, so
			// this is reachable only through NewEngine misuse.
			panic(err)
		}
		eng := core.NewEngine(p.ir, ccfg, strat)
		fwd.ctx = eng
		mon.attach(eng)
		return eng
	}
}

// coreConfig lowers the public Config to the engine configuration plus the
// resolved strategy kind and seed.
func coreConfig(p *Program, cfg Config) (core.Config, Strategy, int64) {
	if cfg.Strategy == "" {
		switch cfg.Merge {
		case MergeSSM, MergeFunc:
			// Summary merging needs callee paths explored before the
			// caller advances past the call, which the topological
			// order guarantees (deeper frames first).
			cfg.Strategy = StrategyTopo
		case MergeDSM:
			// DSM needs an interleaving driving heuristic: with DFS a
			// path's successors outrun the δ-deep history window
			// before siblings move, so fast-forwarding never fires.
			// The paper drives DSM with random search for complete
			// exploration and coverage-guided search for partial
			// exploration (§5.1).
			cfg.Strategy = StrategyRandom
		default:
			cfg.Strategy = StrategyDFS
		}
	}
	qp := cfg.QCE
	if qp.Alpha == 0 && qp.Beta == 0 && qp.Kappa == 0 {
		qp = qce.DefaultParams()
	}
	ccfg := core.Config{
		Merge:           cfg.Merge,
		UseQCE:          cfg.UseQCE,
		QCE:             qp,
		NArgs:           cfg.NArgs,
		ArgLen:          cfg.ArgLen,
		StdinLen:        cfg.StdinLen,
		ConcreteArgs:    cfg.ConcreteArgs,
		ConcreteStdin:   cfg.ConcreteStdin,
		DSMDelta:        cfg.DSMDelta,
		MaxSteps:        cfg.MaxSteps,
		MaxTime:         cfg.MaxTime,
		MaxStates:       cfg.MaxStates,
		Context:         cfg.Context,
		CheckBounds:     cfg.CheckBounds,
		CollectTests:    cfg.CollectTests,
		CanonicalTests:  cfg.CanonicalTests,
		MaxTests:        cfg.MaxTests,
		TrackExactPaths: cfg.TrackExactPaths,
		DisableSessions: cfg.DisableSessions,
		SolverOpts:      solver.DefaultOptions(),
		Obs:             cfg.obsRun,
	}
	if !cfg.DisableAnalysis {
		ccfg.Analysis = p.staticFacts()
		ccfg.CrossCheckAnalysis = cfg.CrossCheckAnalysis
	}
	if cfg.DisableSolverOpts {
		ccfg.SolverOpts = solver.Options{}
	}
	if cfg.Domain != nil {
		// Long-lived shared domain: one builder for every run, the shared
		// cex cache (persistent-store-backed when the domain has one).
		// Placed after the DisableSolverOpts zeroing so an ablation run
		// in a domain still shares the builder but skips the caches.
		ccfg.Builder = cfg.Domain.build
		if ccfg.SolverOpts.EnableCexCache {
			ccfg.SolverOpts.SharedCache = cfg.Domain.cex
		}
	}
	if cfg.Summaries {
		if cfg.Domain != nil {
			ccfg.Summaries = cfg.Domain.sums
		} else {
			dom := cfg.SummaryDomain
			if dom == nil {
				dom = NewSummaryDomain()
			}
			ccfg.Builder = dom.build
			ccfg.Summaries = dom.cache
		}
		ccfg.SummaryMaxSteps = cfg.SummaryMaxSteps
	}
	if cfg.Preprocess != "" {
		// An explicit spec overrides the pipeline the solver would derive
		// from its boolean options; "" keeps Passes nil so ablations like
		// DisableSolverOpts retain their historical meaning.
		passes, err := solver.ParsePasses(cfg.Preprocess)
		if err != nil {
			panic(err) // CLI boundaries validate with ParsePreprocess
		}
		ccfg.SolverOpts.Passes = passes
	}
	return ccfg, cfg.Strategy, cfg.Seed
}

// ctxForwarder defers StrategyContext calls to the engine once built.
type ctxForwarder struct{ ctx core.StrategyContext }

func (f *ctxForwarder) IsCovered(l ir.Loc) bool { return f.ctx.IsCovered(l) }

func (f *ctxForwarder) TopoLess(a, b *core.State) bool { return f.ctx.TopoLess(a, b) }
