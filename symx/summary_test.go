package symx

// Compositional-summary tests: the cache is a pure execution-cost
// optimization, so every observable of a run — canonical test set, outputs,
// exit codes, path census, multiplicity, coverage mask, errors found — must
// be identical with summaries on or off, in every merging regime and at any
// worker count. The differential helpers here pin exactly that, and the
// targeted tests pin each soundness gate (recursion, heap, fresh symbolic
// inputs, aliasing, truncated recordings) falling back to inline.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"symmerge/internal/corpus"
)

// summaryCallSrc is a call-heavy program: two helpers (one with an array
// parameter mutated in place) applied to every argv byte. Loop-free so
// exhaustive exploration is fast and strategy-independent.
const summaryCallSrc = `
int classify(byte c) {
    if (c < 'a') { return 0; }
    if (c > 'z') { return 1; }
    if (c == 'q') { return 2; }
    return 3;
}

int tally(int counts[4], int k) {
    if (k < 0) { return -1; }
    if (k > 3) { return -1; }
    counts[k] = counts[k] + 1;
    return counts[k];
}

void main() {
    int counts[4];
    counts[0] = 0; counts[1] = 0; counts[2] = 0; counts[3] = 0;
    int last = 0;
    last = tally(counts, classify(argchar(1, 0)));
    last = tally(counts, classify(argchar(1, 1)));
    last = tally(counts, classify(argchar(2, 0)));
    putchar(tobyte('0' + (counts[0] + counts[3]) % 10));
    putchar(tobyte('0' + (last + counts[2]) % 10));
    if (counts[1] == 3) {
        putchar('!');
    }
}
`

// summaryScanSrc exercises the remaining entry shapes: a strtol-style scan
// helper with an array out-parameter (CellWrites), a helper that halts the
// whole run on bad input (KindHalt entries), and caller paths that make
// some callee paths infeasible (assume-summary queries must cut them).
const summaryScanSrc = `
void parse_scan(int arg, int start, int out[2]) {
    int v = 0;
    bool any = false;
    bool bad = false;
    for (int i = start; argchar(arg, i) != 0; i++) {
        byte d = argchar(arg, i);
        if (d >= '0' && d <= '9') {
            v = v * 10 + toint(d - '0');
            any = true;
        } else {
            bad = true;
        }
    }
    out[0] = v;
    out[1] = 0;
    if (any && !bad) {
        out[1] = 1;
    }
}

int parse_strict(int arg) {
    int v = 0;
    for (int i = 0; argchar(arg, i) != 0; i++) {
        byte d = argchar(arg, i);
        if (d < '0' || d > '9') {
            putchar('?');
            halt(1);
        }
        v = v * 10 + toint(d - '0');
    }
    return v;
}

void main() {
    int pr[2];
    int total = 0;
    bool ok = true;
    for (int arg = 1; arg < argc(); arg++) {
        parse_scan(arg, 0, pr);
        if (pr[1] == 0) {
            ok = false;
        }
        total = total + pr[0];
    }
    if (ok) {
        total = total + parse_strict(1);
    }
    if (!ok) {
        putchar('?');
        halt(1);
    }
    putchar(tobyte('0' + total % 10));
    halt(0);
}
`

// behavior reduces a result to the observables summaries must preserve:
// canonical input → (output, exit, error) map.
func behavior(t *testing.T, res *Result) map[string]string {
	t.Helper()
	out := make(map[string]string, len(res.Tests))
	for _, tc := range res.Tests {
		id := corpus.InputID(tc.Args, tc.Stdin)
		out[id] = fmt.Sprintf("out=%q exit=%d err=%v msg=%q", tc.Output, tc.Exit, tc.IsErr, tc.Msg)
	}
	return out
}

// checkSummaryParity runs cfg with summaries off and on and fails on any
// observable difference. Returns the summary-enabled result for extra
// assertions.
func checkSummaryParity(t *testing.T, p *Program, cfg Config, label string) *Result {
	t.Helper()
	cfg.CollectTests = true
	cfg.CanonicalTests = true
	if cfg.MaxTests == 0 {
		cfg.MaxTests = 1 << 20
	}
	if cfg.Merge != MergeNone {
		cfg.TrackExactPaths = true
	}
	off := cfg
	off.Summaries = false
	on := cfg
	on.Summaries = true

	roff := Run(p, off)
	ron := Run(p, on)
	if roff.ConfigErr != nil || ron.ConfigErr != nil {
		t.Fatalf("%s: config refused: off=%v on=%v", label, roff.ConfigErr, ron.ConfigErr)
	}
	if !roff.Completed || !ron.Completed {
		t.Fatalf("%s: incomplete exploration: off=%v on=%v", label, roff.Completed, ron.Completed)
	}
	if cfg.Merge == MergeNone {
		// Without merging every path completes separately, so the path
		// count itself must match exactly.
		if roff.Stats.PathsMult.Cmp(ron.Stats.PathsMult) != 0 {
			t.Fatalf("%s: multiplicity off=%s on=%s", label, roff.Stats.PathsMult, ron.Stats.PathsMult)
		}
	} else {
		// Under merging, multiplicity is an over-approximation whose
		// value depends on where merges happen — and summaries
		// legitimately change that (no intra-callee merges at a
		// discharged site). The invariants are the exact shadow census
		// and that both multiplicities still cover it.
		if roff.Stats.ExactPaths != ron.Stats.ExactPaths {
			t.Fatalf("%s: exact census off=%d on=%d", label, roff.Stats.ExactPaths, ron.Stats.ExactPaths)
		}
		for _, r := range []*Result{roff, ron} {
			if r.Stats.PathsMult.Uint64() < r.Stats.ExactPaths {
				t.Fatalf("%s: multiplicity %s under-counts census %d", label, r.Stats.PathsMult, r.Stats.ExactPaths)
			}
		}
	}
	if roff.Stats.ErrorsFound != ron.Stats.ErrorsFound {
		t.Fatalf("%s: errors off=%d on=%d", label, roff.Stats.ErrorsFound, ron.Stats.ErrorsFound)
	}
	if len(roff.CoverageMask) != len(ron.CoverageMask) {
		t.Fatalf("%s: coverage mask length off=%d on=%d", label, len(roff.CoverageMask), len(ron.CoverageMask))
	}
	for i := range roff.CoverageMask {
		if roff.CoverageMask[i] != ron.CoverageMask[i] {
			t.Fatalf("%s: coverage diverges at loc index %d: off=%v on=%v",
				label, i, roff.CoverageMask[i], ron.CoverageMask[i])
		}
	}
	boff, bon := behavior(t, roff), behavior(t, ron)
	if len(boff) != len(bon) {
		t.Fatalf("%s: %d canonical inputs off, %d on", label, len(boff), len(bon))
	}
	for id, want := range boff {
		if got, ok := bon[id]; !ok {
			t.Fatalf("%s: input %s missing with summaries on", label, id)
		} else if got != want {
			t.Fatalf("%s: input %s behavior off=%s on=%s", label, id, want, got)
		}
	}
	return ron
}

// TestSummaryParityMatrix: byte-identical observables across every merging
// regime and worker count on the call-heavy fixture, with cache hits
// actually occurring under at least the non-trivial regimes.
func TestSummaryParityMatrix(t *testing.T) {
	fixtures := []struct {
		name string
		src  string
	}{
		{"calls", summaryCallSrc},
		{"scan", summaryScanSrc},
	}
	regimes := []struct {
		name  string
		merge MergeMode
		qce   bool
	}{
		{"none", MergeNone, false},
		{"ssm+qce", MergeSSM, true},
		{"dsm+qce", MergeDSM, true},
		{"func", MergeFunc, false},
	}
	for _, fx := range fixtures {
		p, err := Compile(fx.src)
		if err != nil {
			t.Fatalf("%s: compile: %v", fx.name, err)
		}
		for _, reg := range regimes {
			for _, workers := range []int{1, 8} {
				label := fmt.Sprintf("%s/%s/w%d", fx.name, reg.name, workers)
				res := checkSummaryParity(t, p, Config{
					NArgs: 2, ArgLen: 2,
					Merge:   reg.merge,
					UseQCE:  reg.qce,
					Workers: workers,
					MaxTime: 30 * time.Second,
				}, label)
				if res.Stats.SummaryRecords == 0 {
					t.Errorf("%s: no summary was ever recorded", label)
				}
				if res.Stats.SummaryHits == 0 {
					t.Errorf("%s: no call site was discharged from the cache", label)
				}
			}
		}
	}
}

// TestSummaryStatsAccounting: the counters tell a coherent story — sites
// are either discharged or rejected, recordings happen once per input
// class, and recorded steps are visible.
func TestSummaryStatsAccounting(t *testing.T) {
	p, err := Compile(summaryCallSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := Run(p, Config{
		NArgs: 2, ArgLen: 2,
		Summaries: true, CollectTests: true,
	})
	st := res.Stats
	if st.SummaryRecords == 0 || st.SummaryHits == 0 {
		t.Fatalf("expected recordings and hits, got records=%d hits=%d", st.SummaryRecords, st.SummaryHits)
	}
	if st.SummaryHits > 0 && st.SummaryEntries == 0 {
		t.Fatalf("discharged %d sites but applied no entries", st.SummaryHits)
	}
	if st.SummarySteps == 0 {
		t.Fatalf("recordings consumed no steps")
	}
	if st.Solver.SummaryQueries == 0 {
		t.Fatalf("no assume-summary queries were classed")
	}
}

// gateParity compiles src and checks parity plus that no summary was ever
// applied for it (the gate must force inline exploration throughout).
func gateParity(t *testing.T, src, label string, wantRejects bool) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	res := checkSummaryParity(t, p, Config{
		NArgs: 1, ArgLen: 2,
		MaxTime: 30 * time.Second,
	}, label)
	if wantRejects && res.Stats.SummaryRejects == 0 {
		t.Errorf("%s: expected inline fallbacks, saw none", label)
	}
}

// TestSummaryGateRecursion: a recursive callee is statically ineligible.
func TestSummaryGateRecursion(t *testing.T) {
	gateParity(t, `
int down(int n) {
    if (n <= 0) { return 0; }
    return down(n - 1) + 1;
}
void main() {
    putchar(tobyte('0' + down(toint(argchar(1, 0)) & 3)));
}
`, "recursion", true)
}

// TestSummaryGateHeap: a callee whose closure touches the symbolic heap is
// statically ineligible.
func TestSummaryGateHeap(t *testing.T) {
	gateParity(t, `
int stash(int v) {
    ptr h = alloc(2);
    h[v & 1] = v;
    return h[0];
}
void main() {
    putchar(tobyte('0' + (stash(toint(argchar(1, 0))) & 7)));
}
`, "heap", true)
}

// TestSummaryGateSymInput: a callee that conjures fresh symbolic input is
// statically ineligible (its paths are not a function of its arguments).
func TestSummaryGateSymInput(t *testing.T) {
	gateParity(t, `
int pick(int v) {
    int s = sym_int();
    if (s < v) { return 0; }
    return 1;
}
void main() {
    putchar(tobyte('0' + pick(toint(argchar(1, 0)) & 3)));
}
`, "symintput", true)
}

// TestSummaryGateAliasedArrays: passing the same array to two parameters
// must fall back at that site (the recording seeds them as disjoint
// objects), while behavior stays identical.
func TestSummaryGateAliasedArrays(t *testing.T) {
	gateParity(t, `
int swapadd(int a[2], int b[2]) {
    int t = a[0];
    a[0] = b[1] + 1;
    b[1] = t;
    if (a[0] > 5) { return 1; }
    return 0;
}
void main() {
    int xs[2];
    xs[0] = toint(argchar(1, 0)) & 7;
    xs[1] = 2;
    int r = swapadd(xs, xs);
    putchar(tobyte('0' + ((xs[0] + xs[1] + r) % 10)));
}
`, "aliased", true)
}

// TestSummaryGateTruncatedRecording: a recording budget too small for any
// callee negatively caches everything; the run is then pure inline and
// still byte-identical.
func TestSummaryGateTruncatedRecording(t *testing.T) {
	p, err := Compile(summaryCallSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := checkSummaryParity(t, p, Config{
		NArgs: 2, ArgLen: 2,
		SummaryMaxSteps: 1,
		MaxTime:         30 * time.Second,
	}, "truncated")
	if res.Stats.SummaryHits != 0 {
		t.Fatalf("a 1-step recording budget still discharged %d sites", res.Stats.SummaryHits)
	}
	if res.Stats.SummaryRejects == 0 {
		t.Fatalf("expected every call site to fall back inline")
	}
}

// TestSummarySharedDomain: a second run over the same domain reuses the
// first run's recordings wholesale — hits without a single new recording —
// and still matches a cold run's observables.
func TestSummarySharedDomain(t *testing.T) {
	p, err := Compile(summaryCallSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dom := NewSummaryDomain()
	cfg := Config{
		NArgs: 2, ArgLen: 2,
		Summaries: true, SummaryDomain: dom,
		CollectTests: true, CanonicalTests: true, MaxTests: 1 << 20,
	}
	warmup := Run(p, cfg)
	if warmup.Stats.SummaryRecords == 0 {
		t.Fatalf("warm-up run recorded nothing")
	}
	second := Run(p, cfg)
	if second.Stats.SummaryRecords != 0 {
		t.Fatalf("second run re-recorded %d summaries despite the shared domain", second.Stats.SummaryRecords)
	}
	if second.Stats.SummaryHits == 0 {
		t.Fatalf("second run hit nothing")
	}
	bwarm, bsecond := behavior(t, warmup), behavior(t, second)
	if len(bwarm) != len(bsecond) {
		t.Fatalf("warm %d inputs, second %d", len(bwarm), len(bsecond))
	}
	for id, want := range bwarm {
		if got := bsecond[id]; got != want {
			t.Fatalf("input %s: warm %s, second %s", id, want, got)
		}
	}
}

// TestSummaryCheckBoundsIgnored: under CheckBounds the engine must ignore
// the cache entirely (bounds errors are analyses of the calling context).
func TestSummaryCheckBoundsIgnored(t *testing.T) {
	p, err := Compile(summaryCallSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := Run(p, Config{
		NArgs: 2, ArgLen: 2,
		Summaries: true, CheckBounds: true,
	})
	st := res.Stats
	if st.SummaryHits != 0 || st.SummaryRecords != 0 || st.SummaryRejects != 0 {
		t.Fatalf("summary machinery ran under CheckBounds: hits=%d records=%d rejects=%d",
			st.SummaryHits, st.SummaryRecords, st.SummaryRejects)
	}
}

// TestMergeFuncStrategyRefused (regression, config validation): MergeFunc
// under a non-topological worklist silently under-merges, so an explicit
// non-topo strategy must be refused up front via ConfigErr — in the outer
// config and in portfolio entries — while topo and the empty default stay
// accepted.
func TestMergeFuncStrategyRefused(t *testing.T) {
	p, err := Compile(echoSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := Run(p, Config{NArgs: 1, ArgLen: 2, Merge: MergeFunc, Strategy: StrategyDFS})
	if res.ConfigErr == nil {
		t.Fatal("merge=func with DFS was not refused")
	}
	if !strings.Contains(res.ConfigErr.Error(), "topological") {
		t.Fatalf("unhelpful refusal: %v", res.ConfigErr)
	}
	if res.Stats.PathsCompleted != 0 {
		t.Fatal("refused config still explored")
	}
	for _, ok := range []Config{
		{NArgs: 1, ArgLen: 2, Merge: MergeFunc, Strategy: StrategyTopo},
		{NArgs: 1, ArgLen: 2, Merge: MergeFunc},
	} {
		if r := Run(p, ok); r.ConfigErr != nil {
			t.Fatalf("valid config refused: %v", r.ConfigErr)
		}
	}
	bad := Run(p, Config{
		Portfolio: []Config{
			{NArgs: 1, ArgLen: 2, Merge: MergeNone},
			{NArgs: 1, ArgLen: 2, Merge: MergeFunc, Strategy: StrategyRandom},
		},
	})
	if bad.ConfigErr == nil || !strings.Contains(bad.ConfigErr.Error(), "portfolio entry 1") {
		t.Fatalf("portfolio entry not validated: %v", bad.ConfigErr)
	}
}

// TestSummaryFuzzParity: randomized differential pass over call-heavy
// generated programs, the observable-parity counterpart of the fixed
// matrix above.
func TestSummaryFuzzParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(8088))
	gen := &progGen{rng: rng}
	checked := 0
	for iter := 0; iter < 25; iter++ {
		src := gen.generateWithHelper(4 + rng.Intn(5))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		for _, cfg := range []Config{
			{NArgs: 1, ArgLen: 2, Merge: MergeNone, MaxTime: 20 * time.Second},
			{NArgs: 1, ArgLen: 2, Merge: MergeSSM, UseQCE: true, MaxTime: 20 * time.Second},
		} {
			checkSummaryParity(t, p, cfg, fmt.Sprintf("iter %d merge=%s\n%s", iter, cfg.Merge, src))
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d programs checked", checked)
	}
}

// FuzzSummaryRoundTrip: with summaries on, every canonical test generated
// from a call-heavy random program must replay to exactly the output and
// exit it predicts (concrete replay is the ground truth the cache cannot
// be allowed to distort).
func FuzzSummaryRoundTrip(f *testing.F) {
	for _, seed := range []int64{3, 11, 31337, 20260808} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		gen := &progGen{rng: rng}
		src := gen.generateWithHelper(4 + rng.Intn(5))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program does not compile: %v\n%s", err, src)
		}
		res := Run(p, Config{
			NArgs: 1, ArgLen: 2,
			Summaries:    true,
			CollectTests: true, CanonicalTests: true,
			MaxTests: 4096,
			MaxTime:  20 * time.Second,
		})
		if !res.Completed {
			t.Skip("budget")
		}
		for ti, tc := range res.Tests {
			if ti >= 8 {
				break
			}
			if tc.IsErr && !tc.Assert {
				continue // engine-analysis failure, no replay counterpart
			}
			replay := Run(p, Config{ConcreteArgs: tc.Args, ConcreteStdin: tc.Stdin, CollectTests: true})
			if len(replay.Tests) != 1 {
				t.Fatalf("replay explored %d paths\n%s", len(replay.Tests), src)
			}
			if string(replay.Tests[0].Output) != string(tc.Output) {
				t.Fatalf("test predicted %q, replay printed %q\nargs=%q\n%s",
					tc.Output, replay.Tests[0].Output, tc.Args, src)
			}
		}
	})
}
