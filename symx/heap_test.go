package symx

// End-to-end tests for the symbolic heap: exploration over dynamically
// allocated state must merge soundly (exact-path census parity with the
// unmerged exploration), generated tests must replay concretely, and a heap
// program's corpus must round-trip through the independent IR interpreter
// with full coverage parity.

import (
	"testing"

	"symmerge/internal/corpus"
	"symmerge/internal/ir"
)

// heapUniqSrc compresses adjacent duplicate stdin bytes through two heap
// buffers. The write index m diverges per path, so under merging the
// buf[m]/cnt[m-1] accesses go through symbolic addresses — the exact
// workload class the symbolic heap exists for.
const heapUniqSrc = `
void main() {
    int n = stdinlen();
    ptr buf = alloc(n + 1);
    for (int i = 0; i < n; i++) {
        buf[i] = toint(stdinchar(i));
    }
    int m = 0;
    ptr cnt = alloc(n + 1);
    for (int i = 0; i < n; i++) {
        if (m > 0 && buf[m-1] == buf[i]) {
            cnt[m-1] += 1;
        } else {
            buf[m] = buf[i];
            cnt[m] = 1;
            m++;
        }
    }
    for (int k = 0; k < m; k++) {
        putchar(tobyte('0' + cnt[k]));
        putchar(tobyte(buf[k]));
    }
}
`

func TestHeapMergeSoundness(t *testing.T) {
	p, err := Compile(heapUniqSrc)
	if err != nil {
		t.Fatal(err)
	}
	plain := Run(p, Config{StdinLen: 3, Merge: MergeNone, CollectTests: true, MaxTests: 4096})
	if !plain.Completed {
		t.Fatal("plain exploration did not complete")
	}
	for _, mode := range []MergeMode{MergeSSM, MergeDSM, MergeFunc} {
		for _, useQCE := range []bool{false, true} {
			m := Run(p, Config{
				StdinLen: 3, Merge: mode, UseQCE: useQCE,
				TrackExactPaths: true, CollectTests: true, MaxTests: 4096,
			})
			if !m.Completed {
				t.Fatalf("%v qce=%v did not complete", mode, useQCE)
			}
			if m.Stats.ExactPaths != plain.Stats.PathsCompleted {
				t.Fatalf("%v qce=%v: census %d != plain %d paths",
					mode, useQCE, m.Stats.ExactPaths, plain.Stats.PathsCompleted)
			}
			for ti, tc := range m.Tests {
				if ti >= 10 {
					break
				}
				rr := Run(p, Config{ConcreteArgs: tc.Args, ConcreteStdin: tc.Stdin, CollectTests: true})
				if len(rr.Tests) != 1 || string(rr.Tests[0].Output) != string(tc.Output) {
					t.Fatalf("%v qce=%v test %d: predicted %q, concrete replay %q (stdin %q)",
						mode, useQCE, ti, tc.Output, rr.Tests[0].Output, tc.Stdin)
				}
			}
		}
	}
}

func TestHeapCorpusRoundTrip(t *testing.T) {
	p, err := Compile(heapUniqSrc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res := Run(p, Config{
		StdinLen: 2, Merge: MergeSSM, UseQCE: true,
		CorpusDir: dir, CorpusLabel: "heap-uniq",
	})
	if res.CorpusErr != nil {
		t.Fatalf("corpus emission: %v", res.CorpusErr)
	}
	if !res.Completed {
		t.Fatal("exploration did not complete")
	}
	rep, err := corpus.Replay(dir, p.Internal())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("replay divergence: %s", m)
	}
	if !rep.ParityOK() {
		t.Errorf("coverage parity failed: %d missing, %d extra locations",
			len(rep.MissingLocs), len(rep.ExtraLocs))
	}
	if rep.Tests == 0 {
		t.Error("empty corpus")
	}
}

// TestHeapEngineAgainstInterpreter pins the two execution pipelines together
// on pointer-arithmetic-heavy concrete runs (the conformance suite does the
// same for the registered models; this covers constructs models may not use,
// like out-of-bounds heap reads and null-pointer dereferences).
func TestHeapEngineAgainstInterpreter(t *testing.T) {
	src := `
void main() {
    ptr a = alloc(3);
    ptr b = alloc(2);
    a[0] = 10; a[1] = 11; a[2] = 12;
    b[0] = 20; b[1] = 21;
    ptr q = a + 1;
    putchar(tobyte('0' + (q[0] - 10)));        // in-bounds via arithmetic
    putchar(tobyte('0' + q[5]));               // out of bounds: reads 0
    ptr z = 0;
    putchar(tobyte('0' + z[0]));               // null deref: reads 0
    z[0] = 9;                                  // null store: dropped
    q = q - 1;
    putchar(tobyte('0' + (b - a) % 10));       // inter-object distance
    if (a < b) { putchar('L'); }
    if (a != b) { putchar('N'); }
    if (q == a) { putchar('E'); }
    int i = toint(stdinchar(0)) - 'a';
    putchar(tobyte('0' + a[i]- 10));           // data-dependent offset
}
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, stdin := range []string{"a", "b", "c"} {
		want, err := ir.Interp(p.Internal(), nil, []byte(stdin), 1e6)
		if err != nil {
			t.Fatal(err)
		}
		res := Run(p, Config{ConcreteStdin: []byte(stdin), CollectTests: true})
		if len(res.Tests) != 1 {
			t.Fatalf("stdin %q: engine replay explored %d tests", stdin, len(res.Tests))
		}
		if string(res.Tests[0].Output) != string(want.Output) {
			t.Fatalf("stdin %q: engine printed %q, interpreter %q", stdin, res.Tests[0].Output, want.Output)
		}
	}
}
