package symx

// The crash-safe exploration driver (Config.CheckpointDir). It runs the
// exploration in epochs of CheckpointEvery: each epoch is a preemptible
// parallel.Explore whose context times out at the epoch boundary, the
// preempted workers hand back their live states, and the driver persists
// them — plus the cumulative progress counters and the corpus writer's
// dedup state — as one atomic internal/checkpoint snapshot before seeding
// the next epoch with the same states. A run killed at any point between
// (or inside) epochs resumes from the newest valid snapshot and converges
// to the same results as an uninterrupted run: coverage, the error set,
// and the test corpus are schedule-invariant, and corpus emission is
// idempotent by input hash. The multiplicity census additionally
// reproduces exactly when the schedule is canonical (sequential SSM,
// whose merge points are static and whose topological strategy is
// insensitive to worklist order); under DSM the merge PATTERN — which
// paths end up represented by one merged state — depends on which states
// coexist in the worklist, so preemption can shift multiplicities while
// leaving the explored path set, and everything derived from it, intact.

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"symmerge/internal/checkpoint"
	"symmerge/internal/core"
	"symmerge/internal/corpus"
	"symmerge/internal/expr"
	"symmerge/internal/parallel"
	"symmerge/internal/qce"
	"symmerge/internal/solver"
)

// defaultCheckpointEvery is the snapshot interval when Config.CheckpointEvery
// is unset.
const defaultCheckpointEvery = 30 * time.Second

// configFailure builds the empty result for a checkpoint configuration or
// snapshot the run refuses up front (hash mismatch, undecodable states).
func configFailure(err error) *Result {
	res := &Result{PortfolioWinner: -1, ConfigErr: err}
	res.Stats.PathsMult = big.NewInt(0)
	return res
}

// runCheckpointed is runSingle for Config.CheckpointDir.
func runCheckpointed(p *Program, cfg Config) *Result {
	start := time.Now()
	if cfg.CorpusDir != "" {
		cfg = applyCorpusImplications(cfg)
	}
	ccfg, kind, seed := coreConfig(p, cfg)

	// The shared infrastructure parallel.Explore would normally create per
	// call must persist across epochs here: states are snapshotted and
	// reseeded between pool invocations, and their expressions must keep
	// interning into one builder (snapshot decoding targets it too).
	if ccfg.Builder == nil {
		ccfg.Builder = expr.NewBuilder()
	}
	if ccfg.SolverOpts.EnableCexCache && ccfg.SolverOpts.SharedCache == nil {
		ccfg.SolverOpts.SharedCache = solver.NewSharedCache()
	}
	if ccfg.UseQCE && ccfg.QCEAnalysis == nil {
		ccfg.QCEAnalysis = qce.Analyze(p.ir, ccfg.QCE)
	}

	// Epoch boundaries arrive as context timeouts; poll every step so an
	// epoch preempts as soon as its interval elapses instead of being
	// quantized to the default 64-step cadence.
	ccfg.PollEvery = 1

	desc := configDescriptor(cfg, kind)
	pinfo := corpus.ProgramInfo{Name: cfg.CorpusLabel, Hash: corpus.ProgramHash(p.ir), Locations: p.ir.NumLocations()}
	factory := engineFactory(p, kind, seed, cfg.Monitor)

	// The driver takes its own trace lane: epoch boundaries and snapshot
	// writes are driver work, not any worker's.
	drv := cfg.obsRun.NewLane()

	// Resume: restore the newest valid snapshot, refusing one produced by
	// a different program or configuration — resuming it would silently
	// change the census the snapshot's counters belong to.
	var (
		base       *core.Result // progress as of the snapshot
		seeds      []*core.State
		seq        uint64
		corpusSnap *checkpoint.CorpusState
		resumed    bool
	)
	if cfg.Resume {
		sn, err := checkpoint.LoadLatest(cfg.CheckpointDir)
		if err != nil {
			return configFailure(err)
		}
		if sn != nil {
			if sn.Program.Hash != pinfo.Hash {
				return configFailure(fmt.Errorf("checkpoint: snapshot %d is for program hash %.12s…, current program hashes to %.12s…", sn.Seq, sn.Program.Hash, pinfo.Hash))
			}
			if sn.Config != desc {
				return configFailure(fmt.Errorf("checkpoint: snapshot %d was produced under config %q, current config is %q", sn.Seq, sn.Config, desc))
			}
			wires, err := sn.DecodeStates(ccfg.Builder)
			if err != nil {
				return configFailure(fmt.Errorf("checkpoint: snapshot %d: %w", sn.Seq, err))
			}
			if seeds, err = factory(ccfg).MaterializeStates(wires); err != nil {
				return configFailure(fmt.Errorf("checkpoint: snapshot %d: %w", sn.Seq, err))
			}
			base, err = progressToResult(sn.Progress, p.ir.NumLocations())
			if err != nil {
				return configFailure(fmt.Errorf("checkpoint: snapshot %d: %w", sn.Seq, err))
			}
			corpusSnap = sn.Corpus
			seq = sn.Seq + 1
			resumed = true
		}
	}

	var writer *corpus.Writer
	if cfg.CorpusDir != "" {
		var quarantined []string
		if cfg.Resume {
			var err error
			if quarantined, err = corpus.ValidateDir(cfg.CorpusDir); err != nil {
				return corpusFailure(err)
			}
		}
		w, err := corpus.NewWriter(cfg.CorpusDir, p.ir, cfg.CorpusLabel, desc)
		if err != nil {
			return corpusFailure(err)
		}
		if corpusSnap != nil {
			// Quarantined ids leave the restored dedup set so the resumed
			// exploration regenerates their files.
			w.RestoreState(corpusSnap.Seen, corpusSnap.Emitted, corpusSnap.Skipped, quarantined)
		}
		writer = w
		ccfg.TestSink = func(tc core.TestCase) { emitToWriter(writer, tc) }
	}

	interval := cfg.CheckpointEvery
	if interval <= 0 {
		interval = defaultCheckpointEvery
	}
	// The effective interval adapts upward: every epoch boundary pays a
	// fixed cost that scales with the frontier, not the interval — worker
	// teardown, snapshot encoding, and above all re-seeding the next
	// epoch's engines (each seed's path condition re-blasts into a fresh
	// solver session). An interval shorter than that cost makes epochs
	// regress toward one step per snapshot; on a workload whose individual
	// steps outlast the interval, a fixed schedule would never amortize at
	// all. Growing the budget to overheadFactor× the measured overhead
	// bounds the checkpointing tax at ~1/overheadFactor of the run while
	// keeping the user's interval whenever it is affordable.
	const overheadFactor = 4
	effective := interval
	baseCtx := cfg.Context
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	// Budgets are per-invocation: the overall wall-clock deadline and the
	// step budget cover this process's epochs, not the snapshot's past.
	var deadline time.Time
	if cfg.MaxTime > 0 {
		deadline = start.Add(cfg.MaxTime)
	}
	var spentSteps uint64

	var results []*core.Result
	if base != nil {
		results = append(results, base)
	}
	completed := resumed && len(seeds) == 0 // snapshot of a drained frontier
	cause := core.IntrNone
	var ckptErr error

	for !completed {
		if cfg.MaxSteps > 0 && spentSteps >= cfg.MaxSteps {
			cause = core.IntrBudget
			break
		}
		epochLen := effective
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				cause = core.IntrBudget
				break
			}
			if remain < epochLen {
				epochLen = remain
			}
		}
		ecfg := ccfg
		if cfg.MaxSteps > 0 {
			ecfg.MaxSteps = cfg.MaxSteps - spentSteps
		}
		// The driver owns the deadline; the epoch boundary arrives as a
		// context timeout the engines poll on their step cadence.
		ecfg.MaxTime = 0
		ectx, cancel := context.WithTimeout(baseCtx, epochLen)
		ecfg.Context = ectx
		drv.Epoch(seq, len(seeds))
		epochStart := time.Now()
		res, left := parallel.ExplorePreemptible(p.ir, ecfg, parallel.Options{Workers: cfg.Workers, Seeds: seeds}, factory)
		cancel()
		epochWall := time.Since(epochStart)
		results = append(results, res)
		spentSteps += res.Stats.Steps
		seeds = left

		if res.Completed {
			completed = true
			break
		}

		// Snapshot the preempted frontier before the next epoch adopts
		// (and mutates) its states — ToWire copies, so the snapshot is
		// immune to that. A snapshot that fails to persist does not stop
		// the exploration; the failure is reported on the final result.
		sn := &checkpoint.Snapshot{Seq: seq, Program: pinfo, Config: desc}
		sn.Progress = resultToProgress(parallel.Combine(results, false, ccfg))
		if writer != nil {
			seen, emitted, skipped := writer.StateSnapshot()
			sn.Corpus = &checkpoint.CorpusState{Seen: seen, Emitted: emitted, Skipped: skipped}
		}
		wires := make([]*core.StateWire, len(left))
		for i, s := range left {
			wires[i] = s.ToWire()
		}
		sn.EncodeStates(wires)
		snapStart := time.Now()
		_, werr := checkpoint.Write(cfg.CheckpointDir, sn)
		if werr != nil && ckptErr == nil {
			ckptErr = werr
		}
		drv.Checkpoint(seq, len(wires), werr != nil)
		seq++

		// Epoch-boundary overhead: the wall time beyond the stepping budget
		// (pool setup, seed re-blasting, a step that straddled the deadline)
		// plus persisting the snapshot itself.
		overhead := epochWall - epochLen + time.Since(snapStart)
		if min := overheadFactor * overhead; effective < min {
			effective = min
		}

		if baseCtx.Err() != nil {
			// Cancelled from outside (Ctrl-C, SIGTERM, a parent context):
			// the snapshot just written makes the stop resumable, which is
			// what IntrCheckpoint reports.
			cause = core.IntrCheckpoint
			if ckptErr != nil {
				cause = core.IntrContext
			}
			break
		}
	}

	final := parallel.Combine(results, completed, ccfg)
	final.Interrupted = cause
	final.CheckpointErr = ckptErr
	final.Stats.ElapsedSeconds = time.Since(start).Seconds()
	if base != nil {
		final.Stats.ElapsedSeconds += base.Stats.ElapsedSeconds
	}
	if writer != nil {
		final.CorpusErr = finishCorpus(writer, final)
	}
	return final
}

// progressToResult rehydrates a snapshot's cumulative progress into the
// result shape parallel.Combine folds epoch results onto.
func progressToResult(pr checkpoint.Progress, nloc int) (*core.Result, error) {
	mask, err := corpus.RangesToMask(pr.Covered, nloc)
	if err != nil {
		return nil, fmt.Errorf("progress coverage: %w", err)
	}
	res := &core.Result{
		Stats:           pr.Stats,
		Tests:           pr.Tests,
		Errors:          pr.Errors,
		CoverageMask:    mask,
		PortfolioWinner: -1,
	}
	if res.Stats.PathsMult == nil {
		res.Stats.PathsMult = big.NewInt(0)
	}
	return res, nil
}

// resultToProgress is the inverse: the cumulative result so far, with the
// coverage bitmap compressed to the manifest range-list encoding and the
// builder-global rule counters dropped (a resumed builder starts fresh;
// they are diagnostics, not census).
func resultToProgress(res *core.Result) checkpoint.Progress {
	st := res.Stats
	st.Rules = nil
	return checkpoint.Progress{
		Stats:   st,
		Covered: corpus.MaskToRanges(res.CoverageMask),
		Tests:   res.Tests,
		Errors:  res.Errors,
	}
}
