package symx

// Randomized merge-soundness fuzzing: generate random structured MiniC
// programs over symbolic argv, explore them with and without merging, and
// check the invariants the paper's correctness argument rests on:
//
//  1. the exact-path shadow census of the merged exploration equals the
//     plain exploration's path count (merging only groups paths, §1);
//  2. multiplicity covers the true path count (it may over-estimate, §5.2);
//  3. every test case generated from a merged state predicts the output its
//     inputs actually produce (checked by concrete replay — this exercises
//     the guarded output-stream merging), and merged outputs never invent
//     behaviour absent from plain exploration.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"symmerge/internal/ir"
)

// progGen emits random structured programs: straight-line arithmetic over
// int locals, branches on argv bytes and locals, bounded counted loops,
// putchar output, and — for about half of the generated programs — a small
// heap buffer written and read through data-dependent pointer offsets (the
// symbolic-heap workload). All loops are concretely bounded, so every
// program terminates under symbolic input.
type progGen struct {
	rng    *rand.Rand
	b      strings.Builder
	vars   []string
	indent int
	budget int // remaining statement budget
	depth  int
	// heap marks that the current program allocated the buffer h, enabling
	// the pointer-store/load statement forms.
	heap bool
	// noLoops restricts generation to loop-free programs (the corpus
	// strategy-parity suite: every strategy must explore the identical,
	// finite path set quickly).
	noLoops bool
}

func (g *progGen) line(format string, args ...interface{}) {
	for i := 0; i < g.indent; i++ {
		g.b.WriteString("    ")
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// intExpr returns a random int-typed expression string.
func (g *progGen) intExpr(depth int) string {
	if depth == 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprint(g.rng.Intn(20) - 5)
		case 1:
			if len(g.vars) > 0 {
				return g.vars[g.rng.Intn(len(g.vars))]
			}
			return "3"
		default:
			return fmt.Sprintf("toint(argchar(1, %d))", g.rng.Intn(2))
		}
	}
	op := []string{"+", "-", "*", "&", "|", "^"}[g.rng.Intn(6)]
	return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), op, g.intExpr(depth-1))
}

// boolExpr returns a random condition string.
func (g *progGen) boolExpr(depth int) string {
	if depth == 0 || g.rng.Intn(2) == 0 {
		op := []string{"<", "<=", "==", "!="}[g.rng.Intn(4)]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(1), op, g.intExpr(1))
	}
	op := []string{"&&", "||"}[g.rng.Intn(2)]
	return fmt.Sprintf("(%s %s %s)", g.boolExpr(depth-1), op, g.boolExpr(depth-1))
}

func (g *progGen) stmt() {
	if g.budget <= 0 {
		return
	}
	g.budget--
	if g.heap {
		switch g.rng.Intn(8) {
		case 6: // heap store through a data-dependent offset
			g.line("h[%s & 3] = %s;", g.intExpr(1), g.intExpr(2))
			return
		case 7: // heap read through a data-dependent offset
			g.line("putchar(tobyte(h[%s & 3] & 0x7f));", g.intExpr(1))
			return
		}
	}
	switch g.rng.Intn(6) {
	case 0: // new variable
		name := fmt.Sprintf("v%d", len(g.vars))
		g.line("int %s = %s;", name, g.intExpr(2))
		g.vars = append(g.vars, name)
	case 1: // assignment
		if len(g.vars) == 0 {
			g.stmt()
			return
		}
		g.line("%s = %s;", g.vars[g.rng.Intn(len(g.vars))], g.intExpr(2))
	case 2: // output
		g.line("putchar(tobyte(%s & 0x7f));", g.intExpr(1))
	case 3: // branch
		if g.depth >= 3 {
			g.stmt()
			return
		}
		g.depth++
		g.line("if %s {", g.boolExpr(1))
		g.indent++
		g.scoped(func() { g.stmt() })
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.line("} else {")
			g.indent++
			g.scoped(func() { g.stmt() })
			g.indent--
		}
		g.line("}")
		g.depth--
	case 4: // bounded counted loop
		if g.depth >= 2 || g.noLoops {
			g.stmt()
			return
		}
		g.depth++
		idx := fmt.Sprintf("i%d", g.rng.Int63n(1000000))
		g.line("for (int %s = 0; %s < %d; %s++) {", idx, idx, 1+g.rng.Intn(3), idx)
		g.indent++
		g.scoped(func() { g.stmt() })
		g.indent--
		g.line("}")
		g.depth--
	default: // branch on raw input byte
		g.line("if (argchar(1, %d) == %d) {", g.rng.Intn(2), 'a'+g.rng.Intn(3))
		g.indent++
		g.depth++
		g.scoped(func() { g.stmt() })
		g.depth--
		g.indent--
		g.line("}")
	}
}

// scoped runs body and forgets any variables it declared (MiniC block scope).
func (g *progGen) scoped(body func()) {
	saved := len(g.vars)
	body()
	g.vars = g.vars[:saved]
}

func (g *progGen) generate(stmts int) string {
	g.b.Reset()
	g.vars = nil
	g.heap = g.rng.Intn(2) == 0
	g.budget = stmts
	g.line("void main() {")
	g.indent++
	if g.heap {
		g.line("ptr h = alloc(4);")
	}
	for g.budget > 0 {
		g.stmt()
	}
	g.indent--
	g.line("}")
	return g.b.String()
}

func TestFuzzMergeSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(20260612))
	gen := &progGen{rng: rng}
	checked := 0
	for iter := 0; iter < 60; iter++ {
		src := gen.generate(6 + rng.Intn(6))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: generated program does not compile: %v\n%s", iter, err, src)
		}
		plain := Run(p, Config{
			NArgs: 1, ArgLen: 2,
			Merge:        MergeNone,
			CollectTests: true,
			MaxTime:      5 * time.Second,
			MaxTests:     4096,
		})
		if !plain.Completed {
			continue // too big for the fuzz budget; skip
		}
		merged := Run(p, Config{
			NArgs: 1, ArgLen: 2,
			Merge: MergeSSM, UseQCE: true,
			TrackExactPaths: true,
			CollectTests:    true,
			MaxTime:         10 * time.Second,
			MaxTests:        4096,
		})
		if !merged.Completed {
			continue
		}
		checked++
		if merged.Stats.ExactPaths != plain.Stats.PathsCompleted {
			t.Fatalf("iter %d: census %d != plain %d paths\n%s",
				iter, merged.Stats.ExactPaths, plain.Stats.PathsCompleted, src)
		}
		if merged.Stats.PathsMult.Uint64() < plain.Stats.PathsCompleted {
			t.Fatalf("iter %d: multiplicity %s under-counts %d paths\n%s",
				iter, merged.Stats.PathsMult, plain.Stats.PathsCompleted, src)
		}
		// Output soundness is checked by replay: every test case from
		// either exploration must predict exactly the output its
		// concrete inputs produce. (Comparing raw output *sets* between
		// the two runs would be unsound: outputs may depend on
		// unconstrained input bytes, where each run's models are free
		// to differ.) For merged states this exercises the guarded
		// output-stream merging end to end.
		replayCheck := func(kind string, tests []TestCase) {
			for ti, tc := range tests {
				if ti >= 8 {
					break
				}
				replay := Run(p, Config{ConcreteArgs: tc.Args, CollectTests: true})
				if len(replay.Tests) != 1 {
					t.Fatalf("iter %d: %s replay explored %d paths", iter, kind, len(replay.Tests))
				}
				if string(replay.Tests[0].Output) != string(tc.Output) {
					t.Fatalf("iter %d: %s test predicted %q, replay printed %q\nargs=%q\n%s",
						iter, kind, tc.Output, replay.Tests[0].Output, tc.Args, src)
				}
			}
		}
		replayCheck("plain", plain.Tests)
		replayCheck("merged", merged.Tests)
	}
	if checked < 20 {
		t.Fatalf("only %d programs fully checked; generator too explosive", checked)
	}
}

// TestFuzzEngineAgainstInterpreter cross-checks the symbolic engine's
// concrete-replay mode against the independent IR interpreter
// (internal/ir.Interp — plain Go arithmetic, no expression layer, no
// solver) on random programs and random concrete inputs. Any divergence
// means one of the two execution pipelines mis-implements MiniC semantics.
func TestFuzzEngineAgainstInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(6060))
	gen := &progGen{rng: rng}
	for iter := 0; iter < 80; iter++ {
		src := gen.generate(6 + rng.Intn(8))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		for trial := 0; trial < 4; trial++ {
			arg := make([]byte, rng.Intn(3))
			for i := range arg {
				arg[i] = byte('a' + rng.Intn(4))
			}
			args := [][]byte{arg}

			want, err := ir.Interp(p.Internal(), args, nil, 1e6)
			if err != nil {
				t.Fatalf("iter %d: interp error: %v\n%s", iter, err, src)
			}
			res := Run(p, Config{ConcreteArgs: args, CollectTests: true})
			if want.AssumeFailed {
				if res.Stats.PathsCompleted != 0 {
					t.Fatalf("iter %d: interp stopped on assume, engine completed %d paths",
						iter, res.Stats.PathsCompleted)
				}
				continue
			}
			if res.Stats.PathsCompleted != 1 || len(res.Tests) != 1 {
				t.Fatalf("iter %d: engine replay explored %d paths (tests %d)\n%s",
					iter, res.Stats.PathsCompleted, len(res.Tests), src)
			}
			tc := res.Tests[0]
			if string(tc.Output) != string(want.Output) {
				t.Fatalf("iter %d args %q: engine printed %q, interpreter %q\n%s",
					iter, args, tc.Output, want.Output, src)
			}
			if tc.Exit != want.Exit {
				t.Fatalf("iter %d args %q: engine exit %d, interpreter %d\n%s",
					iter, args, tc.Exit, want.Exit, src)
			}
			if tc.IsErr != want.AssertFailed {
				t.Fatalf("iter %d args %q: engine err=%v, interpreter assert=%v\n%s",
					iter, args, tc.IsErr, want.AssertFailed, src)
			}
		}
	}
}

// generateWithHelper wraps a random main body with a branching helper
// function and sprinkles calls to it, exercising the function-summary
// merging regime on random call structures.
func (g *progGen) generateWithHelper(stmts int) string {
	body := g.generate(stmts) // "void main() { ... }"
	helper := `int classify(byte c) {
    if (c < 'a') { return 0; }
    if (c > 'z') { return 1; }
    if (c == 'q') { return 2; }
    return 3;
}
`
	// Inject calls at the top of main: each consumes an argv byte and
	// feeds a local later expressions can read.
	calls := fmt.Sprintf("    int h0 = classify(argchar(1, 0));\n"+
		"    int h1 = classify(argchar(1, %d));\n"+
		"    putchar(tobyte('0' + (h0 + h1) %% 10));\n", g.rng.Intn(2))
	out := strings.Replace(body, "void main() {\n", "void main() {\n"+calls, 1)
	return helper + out
}

// TestFuzzSummaryMergeSoundness: function-summary merging (MergeFunc) on
// random programs with helper calls must account for exactly the plain
// exploration's paths in its shadow census, and its generated tests must
// replay correctly.
func TestFuzzSummaryMergeSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(31337))
	gen := &progGen{rng: rng}
	checked := 0
	for iter := 0; iter < 40; iter++ {
		src := gen.generateWithHelper(4 + rng.Intn(5))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: generated program does not compile: %v\n%s", iter, err, src)
		}
		plain := Run(p, Config{
			NArgs: 1, ArgLen: 2,
			Merge:   MergeNone,
			MaxTime: 5 * time.Second,
		})
		if !plain.Completed {
			continue
		}
		summ := Run(p, Config{
			NArgs: 1, ArgLen: 2,
			Merge:           MergeFunc,
			TrackExactPaths: true,
			CollectTests:    true,
			MaxTime:         10 * time.Second,
			MaxTests:        4096,
		})
		if !summ.Completed {
			continue
		}
		checked++
		if summ.Stats.ExactPaths != plain.Stats.PathsCompleted {
			t.Fatalf("iter %d: census %d != plain %d paths\n%s",
				iter, summ.Stats.ExactPaths, plain.Stats.PathsCompleted, src)
		}
		if summ.Stats.PathsMult.Uint64() < plain.Stats.PathsCompleted {
			t.Fatalf("iter %d: multiplicity %s under-counts %d paths\n%s",
				iter, summ.Stats.PathsMult, plain.Stats.PathsCompleted, src)
		}
		for ti, tc := range summ.Tests {
			if ti >= 6 {
				break
			}
			replay := Run(p, Config{ConcreteArgs: tc.Args, CollectTests: true})
			if len(replay.Tests) != 1 {
				t.Fatalf("iter %d: replay explored %d paths", iter, len(replay.Tests))
			}
			if string(replay.Tests[0].Output) != string(tc.Output) {
				t.Fatalf("iter %d: summary test predicted %q, replay printed %q\nargs=%q\n%s",
					iter, tc.Output, replay.Tests[0].Output, tc.Args, src)
			}
		}
	}
	if checked < 15 {
		t.Fatalf("only %d programs fully checked", checked)
	}
}

// TestFuzzDSMAgainstSSM cross-checks the two merging regimes on random
// programs: both must account for the same exact path census.
func TestFuzzDSMAgainstSSM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(777))
	gen := &progGen{rng: rng}
	checked := 0
	for iter := 0; iter < 30; iter++ {
		src := gen.generate(5 + rng.Intn(5))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		run := func(mode MergeMode) *Result {
			return Run(p, Config{
				NArgs: 1, ArgLen: 2,
				Merge: mode, UseQCE: true,
				TrackExactPaths: true,
				Seed:            int64(iter),
				MaxTime:         10 * time.Second,
			})
		}
		ssm := run(MergeSSM)
		dsm := run(MergeDSM)
		if !ssm.Completed || !dsm.Completed {
			continue
		}
		checked++
		if ssm.Stats.ExactPaths != dsm.Stats.ExactPaths {
			t.Fatalf("iter %d: ssm census %d != dsm census %d\n%s",
				iter, ssm.Stats.ExactPaths, dsm.Stats.ExactPaths, src)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d programs fully checked", checked)
	}
}
