package symx

// Domain: the long-lived shared state a persistent service (cmd/symxd)
// keeps between jobs, and the unit at which that state is reclaimed.
//
// A domain bundles one expression builder, its stable fingerprinter, the
// ID-keyed counterexample cache, and the summary cache — optionally wired
// to a persistent store.Store, in which case the cex cache consults the
// store's stable layer on misses and the summary cache is seeded from (and
// harvested back into) it. Every run configured with Config.Domain interns
// into the same builder and shares both caches, so jobs warm each other up
// in-process while the store carries the same knowledge across restarts.
//
// Reclamation follows the spirit of gosmt's ExprBuilder (SNIPPETS.md),
// which frees individual hash-cons buckets with per-entry refcounts and
// runtime finalizers. Node-granular reclamation is unsound here: the engine
// equates expressions by pointer identity, so evicting a node from the
// intern table while any state still references it would let a semantically
// identical node be re-interned at a different address and break canonical
// equality. Instead the refcount/finalizer idiom is applied at domain
// granularity: jobs Acquire/Release the domain they run in, the daemon
// rotates to a fresh domain (rehydrated from the store) once the builder
// grows past a watermark, and the retired domain — builder, intern table,
// caches, fingerprint memo, all of it — becomes garbage the moment its last
// job releases it. A runtime finalizer on the retired domain increments a
// global counter when the collector actually reclaims it, which is what the
// leak test (and the daemon's builders_reclaimed expvar) observe: bounded
// growth is a theorem only if rotation demonstrably frees the old tables.

import (
	"runtime"
	"sync/atomic"

	"symmerge/internal/expr"
	"symmerge/internal/solver"
	"symmerge/internal/store"
	"symmerge/internal/summary"
)

// Domain is the shared builder + caches + (optional) persistent store
// bundle for long-lived multi-run processes. All methods are safe for
// concurrent use; the zero value is not usable — call NewDomain.
type Domain struct {
	build *expr.Builder
	fper  *expr.Fingerprinter
	cex   *solver.Cache
	sums  *summary.Cache
	st    *store.Store

	refs atomic.Int64

	// SeededSummaries is how many persisted summaries rehydrated into this
	// domain at creation (0 without a store).
	SeededSummaries int
}

var domainsReclaimed atomic.Uint64

// NewDomain creates a fresh domain, optionally backed by a persistent
// store (nil is a purely in-memory domain — still useful for sharing one
// builder and both caches across the runs of a suite).
func NewDomain(st *store.Store) *Domain {
	d := &Domain{
		build: expr.NewBuilder(),
		fper:  new(expr.Fingerprinter),
		cex:   solver.NewSharedCache(),
		sums:  summary.NewCache(),
		st:    st,
	}
	if st != nil {
		d.cex.AttachStable(st, d.fper)
		d.SeededSummaries = st.SeedSummaries(d.build, d.sums)
	}
	// The finalizer must not close over d (that would keep it reachable
	// forever); the parameter form gets the pointer at collection time.
	runtime.SetFinalizer(d, func(*Domain) { domainsReclaimed.Add(1) })
	return d
}

// Acquire marks one job as running in this domain. Pair with Release.
func (d *Domain) Acquire() { d.refs.Add(1) }

// Release undoes one Acquire.
func (d *Domain) Release() { d.refs.Add(-1) }

// Refs reports the number of jobs currently holding the domain — the
// daemon retires a rotated-out domain by simply dropping its pointer once
// this reaches zero.
func (d *Domain) Refs() int64 { return d.refs.Load() }

// NumNodes reports the builder's intern-table size: the rotation
// watermark input.
func (d *Domain) NumNodes() int { return d.build.NumNodes() }

// Store returns the backing store (nil for in-memory domains).
func (d *Domain) Store() *store.Store { return d.st }

// WarmHits reports how many queries (whole queries plus independence
// groups) the domain's runs answered from the persistent store.
func (d *Domain) WarmHits() uint64 {
	if d.st == nil {
		return 0
	}
	return d.st.Stats().LookupHits
}

// Flush harvests summaries recorded since the last flush into the store
// and flushes the store to disk. It reports how many new summaries were
// captured. A no-op without a store.
func (d *Domain) Flush() (int, error) {
	if d.st == nil {
		return 0, nil
	}
	n := d.st.HarvestSummaries(d.sums)
	return n, d.st.Flush()
}

// DomainsReclaimed reports how many retired domains the garbage collector
// has actually reclaimed, process-wide. Monotone; the daemon publishes it
// as builders_reclaimed.
func DomainsReclaimed() uint64 { return domainsReclaimed.Load() }
