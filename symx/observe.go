package symx

// The public face of the observability layer (internal/obs): metrics
// re-exports for embedders, and the Monitor — a live aggregate view over
// every engine a run spins up, safe to sample from any goroutine while the
// exploration is hot. cmd/symx serves Monitor.Progress at -debug-addr
// /progress and prints it on the -progress cadence.

import (
	"sync"
	"time"

	"symmerge/internal/core"
	"symmerge/internal/obs"
)

// Metrics is the sharded counter/gauge/histogram registry the engines feed
// when Config.Metrics is set. Snapshot() is safe to call concurrently with
// the run; PublishMetrics exposes it over expvar.
type Metrics = obs.Metrics

// MetricsSnap is one point-in-time JSON-marshalable metrics snapshot.
type MetricsSnap = obs.MetricsSnap

// NewMetrics returns an empty metrics registry for Config.Metrics.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// PublishMetrics registers m as the expvar variable "symmerge.metrics"
// (idempotent; only the first registry wins, matching expvar's
// publish-once contract).
func PublishMetrics(m *Metrics) { obs.PublishExpvar(m) }

// progressSchema versions the Progress JSON shape.
const progressSchema = "symmerge-progress/v1"

// Monitor aggregates live progress across all engines of a run: sequential,
// the per-worker engines of a parallel run, and every epoch's engines of a
// checkpointed run. Set it as Config.Monitor before Run and sample
// Progress() from any goroutine — engines publish immutable snapshots, so
// reads never block a worker.
//
// Counters are summed over attached engines; a checkpointed run therefore
// accumulates across epochs (each epoch attaches fresh engines), which is
// exactly the cumulative view a progress display wants. Coverage is the
// union of the engines' bitmaps.
type Monitor struct {
	mu      sync.Mutex
	engines []*core.Engine
	start   time.Time
}

// NewMonitor returns an empty monitor. Attaching happens inside Run.
func NewMonitor() *Monitor { return &Monitor{start: time.Now()} }

// attach registers an engine; nil-safe on both sides so the factory can
// call it unconditionally.
func (m *Monitor) attach(e *core.Engine) {
	if m == nil || e == nil {
		return
	}
	m.mu.Lock()
	if m.start.IsZero() {
		m.start = time.Now()
	}
	m.engines = append(m.engines, e)
	m.mu.Unlock()
}

// Progress is a point-in-time aggregate over a run's engines — the
// /progress JSON document.
type Progress struct {
	Schema         string  `json:"schema"`
	Engines        int     `json:"engines"`
	Steps          uint64  `json:"steps"`
	Instructions   uint64  `json:"instructions"`
	Forks          uint64  `json:"forks"`
	MergeAttempts  uint64  `json:"merge_attempts"`
	Merges         uint64  `json:"merges"`
	FFSelected     uint64  `json:"ff_selected"`
	PathsCompleted uint64  `json:"paths_completed"`
	ErrorsFound    int     `json:"errors_found"`
	Worklist       int     `json:"worklist"`
	Queries        uint64  `json:"queries"`
	CacheHits      uint64  `json:"cache_hits"`
	SATCalls       uint64  `json:"sat_calls"`
	CoveredInstrs  int     `json:"covered_instrs"`
	TotalInstrs    int     `json:"total_instrs"`
	CoveragePct    float64 `json:"coverage_pct"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Progress samples every attached engine's latest published snapshot and
// folds them. Nil-safe: a nil monitor reports an empty document.
func (m *Monitor) Progress() Progress {
	p := Progress{Schema: progressSchema}
	if m == nil {
		return p
	}
	m.mu.Lock()
	engines := append([]*core.Engine(nil), m.engines...)
	start := m.start
	m.mu.Unlock()

	var cover []bool
	for _, e := range engines {
		st, mask, wl := e.LiveProgress()
		p.Steps += st.Steps
		p.Instructions += st.Instructions
		p.Forks += st.Forks
		p.MergeAttempts += st.MergeAttempts
		p.Merges += st.Merges
		p.FFSelected += st.FFSelected
		p.PathsCompleted += st.PathsCompleted
		p.ErrorsFound += st.ErrorsFound
		p.Worklist += wl
		p.Queries += st.Solver.Queries
		p.CacheHits += st.Solver.CacheHits + st.Solver.ModelReuseHits
		p.SATCalls += st.Solver.SATCalls
		if st.TotalInstrs > p.TotalInstrs {
			p.TotalInstrs = st.TotalInstrs
		}
		if len(mask) > len(cover) {
			grown := make([]bool, len(mask))
			copy(grown, cover)
			cover = grown
		}
		for i, c := range mask {
			if c {
				cover[i] = true
			}
		}
	}
	p.Engines = len(engines)
	for _, c := range cover {
		if c {
			p.CoveredInstrs++
		}
	}
	if p.TotalInstrs > 0 {
		p.CoveragePct = 100 * float64(p.CoveredInstrs) / float64(p.TotalInstrs)
	}
	if !start.IsZero() {
		p.ElapsedSeconds = time.Since(start).Seconds()
	}
	return p
}
