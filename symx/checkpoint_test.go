package symx

// Tests for the crash-safe exploration driver's building blocks that need
// package-internal access: the state wire round-trip over generated programs
// (FuzzStateRoundTrip), mid-run snapshot + restore census equality, and the
// Interrupted cause classification.

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"symmerge/internal/checkpoint"
	"symmerge/internal/core"
	"symmerge/internal/parallel"
)

// stepUntilSnapshot advances the engine and returns its frontier wires plus
// its progress-so-far, emulating the checkpoint driver's epoch boundary.
func stepUntilSnapshot(eng *core.Engine, steps int) ([]*core.StateWire, *core.Result, bool) {
	st := eng.StepN(steps)
	return eng.Snapshot(), eng.Progress(), st == core.RunDrained
}

// drainEngine runs the engine to exhaustion and packages the result.
func drainEngine(eng *core.Engine) *core.Result {
	for {
		if st := eng.StepN(512); st != core.RunMore {
			return eng.Finish(st == core.RunDrained)
		}
	}
}

// FuzzStateRoundTrip drives the checkpoint wire format with engine-produced
// states over randomly generated programs (heap-using ones included): every
// frontier must encode to a node table that (a) decodes through the SAME
// builder to pointer-identical expressions — proving the encoding loses
// nothing the hash-cons would distinguish — and (b) decodes through a FRESH
// builder to a byte-identical re-encoding — proving a resumed process
// reconstructs the exact snapshot it would itself write.
func FuzzStateRoundTrip(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 7, 11, 42, 20260807} {
		f.Add(seed, uint8(20))
	}
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		rng := rand.New(rand.NewSource(seed))
		gen := &progGen{rng: rng}
		src := gen.generate(6 + rng.Intn(6))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program does not compile: %v\n%s", err, src)
		}
		cfg := Config{NArgs: 1, ArgLen: 2}
		switch seed % 3 {
		case 1:
			cfg.Merge, cfg.UseQCE = MergeSSM, true
		case 2:
			cfg.Merge, cfg.UseQCE = MergeDSM, true
		}

		eng := NewEngine(p, cfg)
		eng.Begin(true)
		eng.StepN(1 + int(steps))
		wires := eng.Snapshot()

		var sn checkpoint.Snapshot
		sn.EncodeStates(wires)
		enc1, err := json.Marshal(&sn)
		if err != nil {
			t.Fatal(err)
		}

		// Same builder: pure hash-cons hits, pointer-identical throughout.
		back, err := sn.DecodeStates(eng.Builder())
		if err != nil {
			t.Fatalf("decode through the producing builder: %v", err)
		}
		requireSameWires(t, wires, back)

		// Fresh builder: re-encoding must be byte-identical.
		eng2 := NewEngine(p, cfg) // fresh engine = fresh builder
		fresh, err := sn.DecodeStates(eng2.Builder())
		if err != nil {
			t.Fatalf("decode through a fresh builder: %v", err)
		}
		var sn2 checkpoint.Snapshot
		sn2.EncodeStates(fresh)
		enc2, err := json.Marshal(&sn2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Errorf("re-encoding diverged for program:\n%s", src)
		}
	})
}

// requireSameWires asserts structural equality with POINTER identity on
// every expression — the same-builder decode contract.
func requireSameWires(t *testing.T, a, b []*core.StateWire) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("state count %d != %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if len(x.Frames) != len(y.Frames) || len(x.PC) != len(y.PC) ||
			len(x.Heap) != len(y.Heap) || len(x.Output) != len(y.Output) ||
			len(x.Shadow) != len(y.Shadow) || x.Mult != y.Mult ||
			x.NSyms != y.NSyms || x.HistPos != y.HistPos || x.JustRet != y.JustRet {
			t.Fatalf("state %d: shape mismatch", i)
		}
		for j := range x.PC {
			if x.PC[j] != y.PC[j] {
				t.Fatalf("state %d: PC[%d] not pointer-identical", i, j)
			}
		}
		for j := range x.Frames {
			fx, fy := x.Frames[j], y.Frames[j]
			if fx.Fn != fy.Fn || fx.PC != fy.PC || fx.RetDst != fy.RetDst {
				t.Fatalf("state %d frame %d: header mismatch", i, j)
			}
			for k := range fx.Locals {
				if fx.Locals[k] != fy.Locals[k] {
					t.Fatalf("state %d frame %d: local %d mismatch", i, j, k)
				}
			}
			for k := range fx.Objects {
				ox, oy := fx.Objects[k], fy.Objects[k]
				if (ox == nil) != (oy == nil) {
					t.Fatalf("state %d frame %d: object %d nil-ness mismatch", i, j, k)
				}
				if ox == nil {
					continue
				}
				if ox.Width != oy.Width || len(ox.Cells) != len(oy.Cells) {
					t.Fatalf("state %d frame %d: object %d shape mismatch", i, j, k)
				}
				for c := range ox.Cells {
					if ox.Cells[c] != oy.Cells[c] {
						t.Fatalf("state %d frame %d object %d: cell %d not pointer-identical", i, j, k, c)
					}
				}
			}
		}
		for j := range x.Heap {
			hx, hy := x.Heap[j], y.Heap[j]
			if hx.ID != hy.ID || hx.Obj.Width != hy.Obj.Width || len(hx.Obj.Cells) != len(hy.Obj.Cells) {
				t.Fatalf("state %d: heap entry %d shape mismatch", i, j)
			}
			for c := range hx.Obj.Cells {
				if hx.Obj.Cells[c] != hy.Obj.Cells[c] {
					t.Fatalf("state %d heap %d: cell %d not pointer-identical", i, j, c)
				}
			}
		}
		for j := range x.Output {
			if x.Output[j] != y.Output[j] {
				t.Fatalf("state %d: output %d mismatch", i, j)
			}
		}
		for j := range x.Allocs {
			if x.Allocs[j] != y.Allocs[j] {
				t.Fatalf("state %d: alloc counter %d mismatch", i, j)
			}
		}
		for j := range x.History {
			if x.History[j] != y.History[j] {
				t.Fatalf("state %d: history %d mismatch", i, j)
			}
		}
		for j := range x.Shadow {
			if len(x.Shadow[j]) != len(y.Shadow[j]) {
				t.Fatalf("state %d: shadow path %d length mismatch", i, j)
			}
			for k := range x.Shadow[j] {
				if x.Shadow[j][k] != y.Shadow[j][k] {
					t.Fatalf("state %d shadow %d: conjunct %d not pointer-identical", i, j, k)
				}
			}
		}
	}
}

// TestSnapshotRestoreCensus proves the core crash-safety invariant at the
// engine level: run half-way, snapshot, abandon the engine (the "crash"),
// restore the frontier into a brand-new engine with a brand-new builder,
// finish there, and combine the two halves — the census must equal an
// uninterrupted run's.
func TestSnapshotRestoreCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	gen := &progGen{rng: rng}
	checked := 0
	for iter := 0; iter < 40 && checked < 8; iter++ {
		src := gen.generate(6 + rng.Intn(6))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		for _, cfg := range []Config{
			{NArgs: 1, ArgLen: 2, Merge: MergeSSM, UseQCE: true},
			{NArgs: 1, ArgLen: 2, Merge: MergeDSM, UseQCE: true},
		} {
			cfg.MaxTime = 5 * time.Second
			full := Run(p, cfg)
			if !full.Completed {
				continue // too big for the test budget
			}

			eng := NewEngine(p, cfg)
			eng.Begin(true)
			wires, part1, drained := stepUntilSnapshot(eng, 10+rng.Intn(40))
			if drained {
				continue // finished before the snapshot point; nothing to restore
			}

			eng2 := NewEngine(p, cfg)
			eng2.Begin(false)
			if err := eng2.Restore(wires); err != nil {
				t.Fatalf("iter %d: restore: %v", iter, err)
			}
			part2 := drainEngine(eng2)
			ccfg, _, _ := coreConfig(p, cfg)
			combined := parallel.Combine([]*core.Result{part1, part2}, part2.Completed, ccfg)

			if !combined.Completed {
				t.Errorf("iter %d merge=%v: restored run did not complete", iter, cfg.Merge)
				continue
			}
			if combined.Stats.CoveredInstrs != full.Stats.CoveredInstrs ||
				combined.Stats.ErrorsFound != full.Stats.ErrorsFound {
				t.Errorf("iter %d merge=%v: invariant census diverged after restore:\n"+
					"  full:     covered=%d errors=%d\n"+
					"  restored: covered=%d errors=%d\nprogram:\n%s",
					iter, cfg.Merge,
					full.Stats.CoveredInstrs, full.Stats.ErrorsFound,
					combined.Stats.CoveredInstrs, combined.Stats.ErrorsFound,
					src)
			}
			// The multiplicity census reproduces exactly only under a
			// canonical schedule (SSM's static merge points + topological
			// strategy). DSM merges whatever happens to coexist in the
			// worklist, so a restored worklist can merge the same path set
			// into different representatives — coverage and errors above are
			// its determinism contract.
			if cfg.Merge == MergeSSM &&
				(combined.Stats.PathsMult.String() != full.Stats.PathsMult.String() ||
					combined.Stats.PathsCompleted != full.Stats.PathsCompleted) {
				t.Errorf("iter %d merge=%v: multiplicity census diverged after restore:\n"+
					"  full:     paths=%s completed=%d\n"+
					"  restored: paths=%s completed=%d\nprogram:\n%s",
					iter, cfg.Merge,
					full.Stats.PathsMult, full.Stats.PathsCompleted,
					combined.Stats.PathsMult, combined.Stats.PathsCompleted,
					src)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no program exercised the snapshot/restore path")
	}
	t.Logf("checked %d snapshot/restore runs", checked)
}

// TestInterruptedCause pins the Result.Interrupted classification: budget
// stops, plain context stops, and checkpointed context stops are told apart
// so callers (paperbench, cmd/symx) can report why a run is incomplete.
func TestInterruptedCause(t *testing.T) {
	p, err := Compile(echoSrc)
	if err != nil {
		t.Fatal(err)
	}

	res := Run(p, Config{NArgs: 1, ArgLen: 2, MaxSteps: 5})
	if res.Completed || res.Interrupted.String() != "budget" {
		t.Errorf("MaxSteps stop: completed=%v interrupted=%q, want budget", res.Completed, res.Interrupted)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res = Run(p, Config{NArgs: 1, ArgLen: 3, Context: ctx})
	if res.Completed || res.Interrupted.String() != "context" {
		t.Errorf("cancelled context: completed=%v interrupted=%q, want context", res.Completed, res.Interrupted)
	}

	// With a checkpoint directory the same cancellation parks a resumable
	// snapshot and reports it did so.
	res = Run(p, Config{
		NArgs: 1, ArgLen: 3, Context: ctx,
		CheckpointDir: t.TempDir(), CheckpointEvery: 10 * time.Millisecond,
	})
	if res.Completed || res.Interrupted.String() != "checkpoint" {
		t.Errorf("cancelled checkpointed run: completed=%v interrupted=%q, want checkpoint",
			res.Completed, res.Interrupted)
	}
	if res.CheckpointErr != nil {
		t.Errorf("checkpoint write failed: %v", res.CheckpointErr)
	}
}
