package symx_test

// Tests for the observability layer's public contracts: live Stats/metrics
// sampling is race-free while the exploration is hot (run these under
// -race), tracing never perturbs the emitted corpus, and the zero-progress
// edge cases stay well-defined.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/internal/obs"
	"symmerge/symx"
)

func compileTool(t *testing.T, name string) (*symx.Program, *coreutils.Tool) {
	t.Helper()
	tool, err := coreutils.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p, tool
}

// TestLiveSamplingWhileRunning hammers Monitor.Progress, Engine stats and
// Metrics.Snapshot from a second goroutine while the exploration runs. The
// assertions are light on purpose — the test's real teeth are the race
// detector (CI runs the suite under -race) and the monotonicity of the
// published snapshots.
func TestLiveSamplingWhileRunning(t *testing.T) {
	for _, workers := range []int{1, 8} {
		p, tool := compileTool(t, "expr")
		met := symx.NewMetrics()
		mon := symx.NewMonitor()
		cfg := tool.BaseConfig()
		cfg.ArgLen = 3
		cfg.Merge = symx.MergeDSM
		cfg.UseQCE = true
		cfg.Workers = workers
		cfg.Metrics = met
		cfg.Monitor = mon

		var stop atomic.Bool
		sampled := make(chan int)
		go func() {
			n := 0
			var lastSteps uint64
			for !stop.Load() {
				pr := mon.Progress()
				if pr.Steps < lastSteps {
					t.Error("published step counter went backwards")
					break
				}
				lastSteps = pr.Steps
				snap := met.Snapshot()
				if _, err := json.Marshal(snap); err != nil {
					t.Errorf("snapshot marshal: %v", err)
					break
				}
				n++
			}
			sampled <- n
		}()

		res := symx.Run(p, cfg)
		stop.Store(true)
		n := <-sampled
		if !res.Completed {
			t.Fatalf("workers=%d: exploration did not complete", workers)
		}
		if n == 0 {
			t.Fatalf("workers=%d: sampler never ran", workers)
		}
		// The final published snapshot must agree with the run's own step
		// accounting.
		if pr := mon.Progress(); pr.Steps != res.Stats.Steps {
			t.Fatalf("workers=%d: monitor steps %d != result steps %d", workers, pr.Steps, res.Stats.Steps)
		}
		if snap := met.Snapshot(); snap.Steps != res.Stats.Steps {
			t.Fatalf("workers=%d: metrics steps %d != result steps %d", workers, snap.Steps, res.Stats.Steps)
		}
	}
}

// TestEngineStatsMidRun samples Engine.Stats directly (the lower-level API
// under Monitor) from a second goroutine during a sequential run.
func TestEngineStatsMidRun(t *testing.T) {
	p, tool := compileTool(t, "expr")
	cfg := tool.BaseConfig()
	cfg.ArgLen = 3
	cfg.Merge = symx.MergeDSM
	cfg.UseQCE = true
	eng := symx.NewEngine(p, cfg)

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			st := eng.Stats()
			_ = st.Coverage()
			_, _, _ = eng.LiveProgress()
		}
	}()
	res := eng.Run()
	stop.Store(true)
	<-done
	if !res.Completed {
		t.Fatal("exploration did not complete")
	}
	if got := eng.Stats().Steps; got != res.Stats.Steps {
		t.Fatalf("final published steps %d != result steps %d", got, res.Stats.Steps)
	}
}

// TestCoverageZeroTotal pins Stats.Coverage at the zero-progress edge: a
// snapshot published before the program is even set up has TotalInstrs ==
// 0 and must report 0, not NaN.
func TestCoverageZeroTotal(t *testing.T) {
	var st symx.Stats
	st.CoveredInstrs = 7 // even an inconsistent snapshot must not divide by zero
	if got := st.Coverage(); got != 0 {
		t.Fatalf("Coverage() with TotalInstrs==0 = %v, want 0", got)
	}
}

// TestTraceCorpusParity is the observability contract end to end: the
// corpus a traced run emits is byte-identical to an untraced run's, and
// the trace itself validates and converts.
func TestTraceCorpusParity(t *testing.T) {
	for _, mode := range []struct {
		name    string
		merge   symx.MergeMode
		qce     bool
		workers int
	}{
		{"ssm", symx.MergeSSM, true, 0},
		{"dsm-workers", symx.MergeDSM, true, 4},
	} {
		t.Run(mode.name, func(t *testing.T) {
			p, tool := compileTool(t, "expr")
			tmp := t.TempDir()
			run := func(arm string, traced bool) *symx.Result {
				cfg := tool.BaseConfig()
				cfg.Merge = mode.merge
				cfg.UseQCE = mode.qce
				cfg.Workers = mode.workers
				cfg.CorpusDir = filepath.Join(tmp, arm)
				cfg.CorpusLabel = tool.Name
				if traced {
					cfg.TraceFile = filepath.Join(tmp, "run.trace")
					cfg.Metrics = symx.NewMetrics()
				}
				res := symx.Run(p, cfg)
				if res.ConfigErr != nil || res.CorpusErr != nil {
					t.Fatalf("%s: config %v corpus %v", arm, res.ConfigErr, res.CorpusErr)
				}
				if !res.Completed {
					t.Fatalf("%s: did not complete", arm)
				}
				return res
			}
			run("base", false)
			res := run("traced", true)

			if res.TraceErr != nil {
				t.Fatalf("trace error: %v", res.TraceErr)
			}
			if res.TraceDrops != 0 {
				t.Fatalf("trace dropped %d events at the default buffer", res.TraceDrops)
			}
			if res.TraceEvents == 0 {
				t.Fatal("traced run emitted no events")
			}

			dBase, err := corpus.DirDigest(filepath.Join(tmp, "base"))
			if err != nil {
				t.Fatal(err)
			}
			dTraced, err := corpus.DirDigest(filepath.Join(tmp, "traced"))
			if err != nil {
				t.Fatal(err)
			}
			if dBase != dTraced {
				t.Fatalf("corpus digest changed under tracing: %s != %s", dBase, dTraced)
			}

			f, err := os.Open(filepath.Join(tmp, "run.trace"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sum, err := obs.Validate(f)
			if err != nil {
				t.Fatalf("trace validation: %v", err)
			}
			if sum.Events != res.TraceEvents || sum.Dropped != res.TraceDrops {
				t.Fatalf("trace accounting: file says %d/%d, result says %d/%d",
					sum.Events, sum.Dropped, res.TraceEvents, res.TraceDrops)
			}
		})
	}
}

// TestTraceFileUnwritable pins the up-front refusal: a trace path that
// cannot be created fails the run before exploring.
func TestTraceFileUnwritable(t *testing.T) {
	p, tool := compileTool(t, "echo")
	cfg := tool.BaseConfig()
	cfg.TraceFile = filepath.Join(t.TempDir(), "no", "such", "dir", "out.trace")
	res := symx.Run(p, cfg)
	if res.ConfigErr == nil {
		t.Fatal("expected ConfigErr for an uncreatable trace path")
	}
	if res.Stats.Steps != 0 {
		t.Fatal("run explored despite the refused trace path")
	}
}
