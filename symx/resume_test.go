package symx_test

// The crash-recovery determinism suite: kill exploration at deterministic
// fault points (mid-step, mid-merge, mid-corpus-write), resume from the
// persisted checkpoint, and require the finished census and corpus to be
// byte-identical to an uninterrupted run's. This is the end-to-end statement
// of ISSUE 6: a crash costs wall-clock, never results.
//
// faultinject arms process-global counters, so nothing here may run in
// parallel with other fault-arming tests; the package's tests are
// sequential by default and none opts into t.Parallel.

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"symmerge/internal/checkpoint"
	"symmerge/internal/checkpoint/faultinject"
	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/symx"
)

// runKilled invokes symx.Run, converting an injected kill (a faultinject
// panic unwinding the whole run, like a real SIGKILL would) into a value.
func runKilled(p *symx.Program, cfg symx.Config) (res *symx.Result, killed *faultinject.Killed) {
	defer func() {
		if r := recover(); r != nil {
			if k, ok := r.(faultinject.Killed); ok {
				killed = &k
				return
			}
			panic(r)
		}
	}()
	return symx.Run(p, cfg), nil
}

// referenceRun produces the uninterrupted baseline: a sequential corpus run
// with no checkpointing. It returns the result and the corpus directory.
func referenceRun(t *testing.T, tool *coreutils.Tool, p *symx.Program, cfg symx.Config) (*symx.Result, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.Workers = 1
	cfg.CorpusDir = dir
	cfg.CorpusLabel = tool.Name
	res := symx.Run(p, cfg)
	if !res.Completed || res.CorpusErr != nil {
		t.Fatalf("reference run: completed=%v corpusErr=%v", res.Completed, res.CorpusErr)
	}
	return res, dir
}

// killResumeLoop runs a checkpointed exploration, killing it at the armed
// fault point and resuming, with the kill threshold growing each attempt so
// the loop terminates. It returns the final result and how many kills and
// snapshot-backed resumes happened.
func killResumeLoop(t *testing.T, p *symx.Program, cfg symx.Config, point faultinject.Point, killAt int64) (*symx.Result, int, int) {
	t.Helper()
	kills, snapResumes := 0, 0
	for attempt := 0; attempt < 12; attempt++ {
		faultinject.Arm(point, killAt)
		res, killed := runKilled(p, cfg)
		faultinject.Disarm()
		if killed == nil {
			return res, kills, snapResumes
		}
		kills++
		cfg.Resume = true
		if sn, err := checkpoint.LoadLatest(cfg.CheckpointDir); err == nil && sn != nil {
			snapResumes++
		}
		killAt *= 3 // let each retry get strictly further
	}
	t.Fatal("kill/resume loop did not converge in 12 attempts")
	return nil, 0, 0
}

// requireSameCensus asserts the schedule-invariant census of two finished
// runs matches: coverage and the error count are properties of the explored
// path set, which killing and resuming must not change. With strict set it
// additionally requires the full multiplicity census — sound only when the
// schedule is canonical: sequential SSM, whose merge points are static and
// whose topological strategy is insensitive to worklist order. DSM's merge
// pattern depends on which states coexist in the worklist (the paper's
// δ-window heuristic is opportunistic by design), and worker sharding
// partitions merge opportunities, so under either a preemption legitimately
// shifts HOW paths are represented (merged vs separate) without touching
// the path set itself — the corpus digest check below is what pins the
// result-level determinism for those cells.
func requireSameCensus(t *testing.T, label string, ref, got *symx.Result, strict bool) {
	t.Helper()
	if !got.Completed {
		t.Fatalf("%s: resumed run did not complete (interrupted: %s)", label, got.Interrupted)
	}
	if got.CorpusErr != nil || got.CheckpointErr != nil {
		t.Fatalf("%s: corpusErr=%v checkpointErr=%v", label, got.CorpusErr, got.CheckpointErr)
	}
	if got.Stats.CoveredInstrs != ref.Stats.CoveredInstrs ||
		got.Stats.ErrorsFound != ref.Stats.ErrorsFound {
		t.Errorf("%s: invariant census diverged:\n  reference: covered=%d errors=%d\n  resumed:   covered=%d errors=%d",
			label,
			ref.Stats.CoveredInstrs, ref.Stats.ErrorsFound,
			got.Stats.CoveredInstrs, got.Stats.ErrorsFound)
	}
	if strict && (got.Stats.PathsMult.String() != ref.Stats.PathsMult.String() ||
		got.Stats.PathsCompleted != ref.Stats.PathsCompleted) {
		t.Errorf("%s: multiplicity census diverged:\n  reference: paths=%s states=%d\n  resumed:   paths=%s states=%d",
			label,
			ref.Stats.PathsMult, ref.Stats.PathsCompleted,
			got.Stats.PathsMult, got.Stats.PathsCompleted)
	}
}

// requireSameCorpus asserts the resumed run's corpus matches the reference,
// after removing quarantined files (kept only for post-mortems; the
// regenerated tests are the live corpus). With strict set the whole
// directory must digest byte-identically, manifest included. Without it,
// every test FILE must still be byte-identical and the manifest must agree
// on everything semantic (program, config, completion, coverage, test
// list); only the Emitted/Deduped/Skipped counters may differ — they
// diagnose the producing schedule (how many emissions the dedup absorbed),
// which a DSM or sharded schedule legitimately permutes.
func requireSameCorpus(t *testing.T, label, refDir, gotDir string, strict bool) {
	t.Helper()
	entries, err := os.ReadDir(gotDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), corpus.QuarantineSuffix) {
			if err := os.Remove(filepath.Join(gotDir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	if strict {
		refD, err := corpus.DirDigest(refDir)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := corpus.DirDigest(gotDir)
		if err != nil {
			t.Fatal(err)
		}
		if refD != gotD {
			t.Errorf("%s: corpus digest %s… differs from uninterrupted %s…", label, gotD[:12], refD[:12])
		}
		return
	}

	refFiles := listCorpusFiles(t, refDir)
	gotFiles := listCorpusFiles(t, gotDir)
	if len(refFiles) != len(gotFiles) {
		t.Errorf("%s: corpus has %d test files, reference has %d", label, len(gotFiles), len(refFiles))
		return
	}
	for i, name := range refFiles {
		if gotFiles[i] != name {
			t.Errorf("%s: corpus file set diverged: %s vs %s", label, gotFiles[i], name)
			return
		}
		a, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(gotDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: test file %s differs from the reference copy", label, name)
		}
	}
	refMan, _, err := corpus.Load(refDir)
	if err != nil {
		t.Fatal(err)
	}
	gotMan, _, err := corpus.Load(gotDir)
	if err != nil {
		t.Fatal(err)
	}
	refMan.Emitted, refMan.Deduped, refMan.Skipped = 0, 0, 0
	gotMan.Emitted, gotMan.Deduped, gotMan.Skipped = 0, 0, 0
	if !reflect.DeepEqual(refMan, gotMan) {
		t.Errorf("%s: manifest diverged beyond emission counters:\n  reference: %+v\n  resumed:   %+v", label, refMan, gotMan)
	}
}

// listCorpusFiles returns the sorted non-manifest file names of a corpus
// directory.
func listCorpusFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() && e.Name() != corpus.ManifestName {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestKillResumeDeterminism is the acceptance sweep: three COREUTILS
// programs × two merging regimes × sequential and sharded workers, each
// killed mid-step at least once and resumed to completion, must reproduce
// the uninterrupted run's census and byte-identical corpus.
func TestKillResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	regimes := []struct {
		name  string
		merge symx.MergeMode
	}{
		{"ssm+qce", symx.MergeSSM},
		{"dsm+qce", symx.MergeDSM},
	}
	totalSnapResumes := 0
	for _, name := range []string{"echo", "base64", "uniq"} {
		tool, err := coreutils.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tool.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range regimes {
			base := tool.MiniConfig()
			base.Merge = reg.merge
			base.UseQCE = true
			base.Seed = 1
			ref, refDir := referenceRun(t, tool, p, base)
			for _, workers := range []int{1, 8} {
				workers := workers
				// Sequential SSM is the canonical schedule: static merge
				// points, worklist-order-insensitive topological strategy.
				// There the ENTIRE result — multiplicity census and corpus
				// bytes including manifest counters — must reproduce. DSM
				// merges opportunistically and sharding partitions merge
				// opportunities, so those cells pin the schedule-invariant
				// results: coverage, errors, and the test corpus itself.
				strict := reg.merge == symx.MergeSSM && workers == 1
				label := name + "/" + reg.name
				t.Run(label+"/w"+string(rune('0'+workers)), func(t *testing.T) {
					cfg := base
					cfg.Workers = workers
					cfg.CorpusDir = t.TempDir()
					cfg.CorpusLabel = tool.Name
					cfg.CheckpointDir = t.TempDir()
					cfg.CheckpointEvery = 500 * time.Microsecond

					// Kill two thirds of the way in: late enough that epochs
					// (and thus snapshots) have happened, early enough that
					// real work remains for the resumed run.
					killAt := int64(ref.Stats.Steps * 2 / 3)
					if killAt < 2 {
						killAt = 2
					}
					res, kills, snapResumes := killResumeLoop(t, p, cfg, faultinject.PointStep, killAt)
					if kills == 0 {
						t.Fatalf("kill at step %d never fired (reference run took %d steps)", killAt, ref.Stats.Steps)
					}
					totalSnapResumes += snapResumes
					requireSameCensus(t, label, ref, res, strict)
					requireSameCorpus(t, label, refDir, cfg.CorpusDir, strict)
				})
			}
		}
	}
	if totalSnapResumes == 0 {
		t.Error("no run ever resumed from a persisted snapshot; lower CheckpointEvery or the kill threshold")
	} else {
		t.Logf("%d snapshot-backed resumes across the sweep", totalSnapResumes)
	}
}

// TestKillResumeMidMerge kills inside the state-merge critical section —
// after the victim has left the worklist, before the merged state exists —
// and requires a resumed run to still converge to the reference census.
func TestKillResumeMidMerge(t *testing.T) {
	tool, err := coreutils.Get("echo")
	if err != nil {
		t.Fatal(err)
	}
	p, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := tool.MiniConfig()
	base.Merge = symx.MergeSSM
	base.UseQCE = true
	base.Seed = 1
	ref, refDir := referenceRun(t, tool, p, base)
	if ref.Stats.Merges == 0 {
		t.Fatal("reference run performed no merges; pick a different tool for this scenario")
	}

	cfg := base
	cfg.Workers = 1
	cfg.CorpusDir = t.TempDir()
	cfg.CorpusLabel = tool.Name
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 500 * time.Microsecond
	res, kills, _ := killResumeLoop(t, p, cfg, faultinject.PointMerge, 2)
	if kills == 0 {
		t.Fatal("mid-merge kill never fired")
	}
	requireSameCensus(t, "echo/mid-merge", ref, res, true)
	requireSameCorpus(t, "echo/mid-merge", refDir, cfg.CorpusDir, true)
}

// TestKillResumeMidCorpusWrite kills inside a corpus file write, leaving a
// torn JSON file at its final path (the fault hook forces the tear the
// atomic rename normally rules out). Resume must quarantine the torn file,
// regenerate the test, and still converge to a byte-identical live corpus.
func TestKillResumeMidCorpusWrite(t *testing.T) {
	tool, err := coreutils.Get("echo")
	if err != nil {
		t.Fatal(err)
	}
	p, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := tool.MiniConfig()
	base.Merge = symx.MergeSSM
	base.UseQCE = true
	base.Seed = 1
	ref, refDir := referenceRun(t, tool, p, base)

	cfg := base
	cfg.Workers = 1
	cfg.CorpusDir = t.TempDir()
	cfg.CorpusLabel = tool.Name
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 500 * time.Microsecond
	res, kills, _ := killResumeLoop(t, p, cfg, faultinject.PointCorpusWrite, 2)
	if kills == 0 {
		t.Fatal("mid-corpus-write kill never fired (fewer than 2 corpus writes?)")
	}

	// The forced tear must have been noticed and moved aside on resume.
	entries, err := os.ReadDir(cfg.CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), corpus.QuarantineSuffix) {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Error("no quarantined file after a mid-write kill and resume")
	}

	requireSameCensus(t, "echo/mid-corpus-write", ref, res, true)
	requireSameCorpus(t, "echo/mid-corpus-write", refDir, cfg.CorpusDir, true)
}
