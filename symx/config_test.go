package symx

import (
	"strings"
	"testing"
)

// TestUnknownStrategyRefused pins the validation satellite: a typo'd
// strategy ("tope" for "topo") must refuse the run up front with ConfigErr —
// not silently explore under DFS while a corpus manifest records the typo.
func TestUnknownStrategyRefused(t *testing.T) {
	p := MustCompile(`void main() { putchar('x'); }`)
	res := Run(p, Config{Strategy: "tope"})
	if res.ConfigErr == nil {
		t.Fatal("Run accepted an unknown strategy")
	}
	if !strings.Contains(res.ConfigErr.Error(), "tope") {
		t.Fatalf("ConfigErr %q does not name the offending strategy", res.ConfigErr)
	}
	if res.Stats.PathsCompleted != 0 || res.Completed {
		t.Fatalf("refused run still explored: %+v", res.Stats)
	}

	// A typo inside a portfolio entry is refused the same way.
	res = Run(p, Config{Portfolio: []Config{{Merge: MergeNone}, {Strategy: "bogus"}}})
	if res.ConfigErr == nil || !strings.Contains(res.ConfigErr.Error(), "bogus") {
		t.Fatalf("portfolio typo not refused: %v", res.ConfigErr)
	}

	// Emitting a corpus under a typo'd strategy must not create one.
	dir := t.TempDir()
	res = Run(p, Config{Strategy: "tope", CorpusDir: dir})
	if res.ConfigErr == nil {
		t.Fatal("corpus run accepted an unknown strategy")
	}

	// Every valid strategy still runs.
	for _, kind := range []Strategy{StrategyDFS, StrategyBFS, StrategyRandom, StrategyCoverage, StrategyTopo} {
		res := Run(p, Config{Strategy: kind})
		if res.ConfigErr != nil {
			t.Fatalf("valid strategy %q refused: %v", kind, res.ConfigErr)
		}
		if !res.Completed {
			t.Fatalf("strategy %q did not complete", kind)
		}
	}
}
