package symx

import (
	"math/big"
	"testing"
	"time"
)

// echoSrc is the paper's Figure 1 program: a simplified echo.
const echoSrc = `
void main() {
    int r = 1;
    int arg = 1;
    if (arg < argc()) {
        // strcmp(argv[arg], "-n") == 0, inlined
        if (argchar(arg, 0) == '-' && argchar(arg, 1) == 'n' && argchar(arg, 2) == 0) {
            r = 0;
            arg++;
        }
    }
    for (; arg < argc(); arg++) {
        for (int i = 0; argchar(arg, i) != 0; i++) {
            putchar(argchar(arg, i));
        }
    }
    if (r != 0) {
        putchar('\n');
    }
}
`

func TestCompileEcho(t *testing.T) {
	p, err := Compile(echoSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.IR() == "" {
		t.Fatal("empty IR dump")
	}
}

// pathCount runs a config and returns completed paths and multiplicity.
func runEcho(t *testing.T, cfg Config) *Result {
	t.Helper()
	p, err := Compile(echoSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := Run(p, cfg)
	return res
}

// TestEchoPathCountNoMerge pins the exact feasible path count. The paper's
// closed form L^N + L^(N-1) treats strcmp as non-splitting (§3.1); our model
// inlines strcmp as short-circuit branches the way LLVM presents it to KLEE,
// so each failing comparison position is its own path. For N=2, L=2:
// arg1 has 5 non-"-n" prefix paths (3 lengths failing at position 0, 2
// failing at position 1) times 3 lengths of arg2, plus 3 lengths of arg2 on
// the "-n" path: 5*3 + 3 = 18.
func TestEchoPathCountNoMerge(t *testing.T) {
	res := runEcho(t, Config{NArgs: 2, ArgLen: 2, Merge: MergeNone})
	if !res.Completed {
		t.Fatal("exploration did not complete")
	}
	if got := res.Stats.PathsCompleted; got != 18 {
		t.Fatalf("paths = %d, want 18", got)
	}
	// Without merging, multiplicity equals the path count.
	if res.Stats.PathsMult.Cmp(big.NewInt(18)) != 0 {
		t.Fatalf("multiplicity = %s, want 18", res.Stats.PathsMult)
	}
}

func TestEchoPathCountLarger(t *testing.T) {
	// N=2, L=3: 8 arg1 prefix paths (4+3+1) * 4 arg2 lengths + 4 = 36.
	res := runEcho(t, Config{NArgs: 2, ArgLen: 3, Merge: MergeNone})
	if got := res.Stats.PathsCompleted; got != 36 {
		t.Fatalf("paths = %d, want 36", got)
	}
}

// TestEchoMergedPreservesPaths: with full merging, the multiplicity at the
// end must still count every feasible path.
func TestEchoMergedPreservesPaths(t *testing.T) {
	for _, mode := range []MergeMode{MergeSSM, MergeDSM} {
		res := runEcho(t, Config{NArgs: 2, ArgLen: 2, Merge: mode, UseQCE: true})
		if !res.Completed {
			t.Fatalf("%v: did not complete", mode)
		}
		if res.Stats.Merges == 0 {
			t.Fatalf("%v: no merges happened", mode)
		}
		// Multiplicity over-approximates paths but must cover them.
		if res.Stats.PathsMult.Cmp(big.NewInt(18)) < 0 {
			t.Fatalf("%v: multiplicity %s < 18 true paths", mode, res.Stats.PathsMult)
		}
		// Merging must reduce the number of separately-completed states.
		if res.Stats.PathsCompleted >= 18 {
			t.Fatalf("%v: merging did not reduce states: %d completions",
				mode, res.Stats.PathsCompleted)
		}
	}
}

// TestEchoExactCensus cross-checks multiplicity against the shadow census.
func TestEchoExactCensus(t *testing.T) {
	res := runEcho(t, Config{
		NArgs: 2, ArgLen: 2,
		Merge: MergeSSM, UseQCE: true,
		TrackExactPaths: true,
	})
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if got := res.Stats.ExactPaths; got != 18 {
		t.Fatalf("exact census = %d, want 18", got)
	}
}

// TestEchoTestGeneration: collected tests must reproduce valid inputs.
func TestEchoTestGeneration(t *testing.T) {
	res := runEcho(t, Config{NArgs: 1, ArgLen: 2, Merge: MergeNone, CollectTests: true})
	if len(res.Tests) == 0 {
		t.Fatal("no test cases generated")
	}
	seenNewline := false
	for _, tc := range res.Tests {
		if len(tc.Args) != 1 {
			t.Fatalf("test with %d args, want 1", len(tc.Args))
		}
		if len(tc.Output) > 0 && tc.Output[len(tc.Output)-1] == '\n' {
			seenNewline = true
		}
	}
	if !seenNewline {
		t.Fatal("no test case exercises the trailing-newline path")
	}
}

func TestStrategiesTerminate(t *testing.T) {
	for _, strat := range []Strategy{StrategyDFS, StrategyBFS, StrategyRandom, StrategyCoverage, StrategyTopo} {
		res := runEcho(t, Config{NArgs: 1, ArgLen: 2, Merge: MergeNone, Strategy: strat, Seed: 1})
		if !res.Completed {
			t.Fatalf("strategy %s did not complete", strat)
		}
		if res.Stats.PathsCompleted != 6 {
			t.Fatalf("strategy %s: %d paths, want 6", strat, res.Stats.PathsCompleted)
		}
	}
}

// TestDeterminism: same seed, same result.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, string) {
		res := runEcho(t, Config{NArgs: 2, ArgLen: 2, Merge: MergeDSM, UseQCE: true,
			Strategy: StrategyRandom, Seed: 42})
		return res.Stats.PathsCompleted, res.Stats.PathsMult.String()
	}
	p1, m1 := run()
	p2, m2 := run()
	if p1 != p2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%s) vs (%d,%s)", p1, m1, p2, m2)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	p := MustCompile(echoSrc)
	res := Run(p, Config{NArgs: 2, ArgLen: 4, MaxSteps: 10})
	if res.Completed {
		t.Fatal("10-step run reported complete on an exponential workload")
	}
	if res.Stats.Steps > 10 {
		t.Fatalf("took %d steps, budget was 10", res.Stats.Steps)
	}
}

func TestMaxStatesPruning(t *testing.T) {
	p := MustCompile(echoSrc)
	res := Run(p, Config{NArgs: 2, ArgLen: 4, MaxStates: 4, MaxSteps: 5000, Strategy: StrategyBFS})
	if res.Stats.MaxWorklist > 8 {
		t.Fatalf("worklist grew to %d despite MaxStates=4", res.Stats.MaxWorklist)
	}
	if res.Stats.Pruned == 0 {
		t.Fatal("no states pruned on an exponential workload with MaxStates=4")
	}
}

func TestTimeBudget(t *testing.T) {
	p := MustCompile(echoSrc)
	// Sized so the run cannot finish within the budget even with the
	// incremental solver sessions (which completed the previous
	// 3×6-argument workload inside 50ms).
	res := Run(p, Config{NArgs: 4, ArgLen: 12, MaxTime: 50 * time.Millisecond})
	if res.Completed {
		t.Fatal("50ms run reported complete on a huge workload")
	}
	if res.Stats.ElapsedSeconds > 2 {
		t.Fatalf("run overshot its budget: %.2fs", res.Stats.ElapsedSeconds)
	}
}

func TestCheckBoundsFindsOOB(t *testing.T) {
	p := MustCompile(`
void main() {
    byte buf[2];
    int i = toint(argchar(1, 0));
    buf[i] = 1; // i can exceed 1
    putchar(buf[0]);
}
`)
	res := Run(p, Config{NArgs: 1, ArgLen: 1, CheckBounds: true})
	if res.Stats.ErrorsFound == 0 {
		t.Fatal("out-of-bounds store not detected")
	}
	// Without bounds checking the same program runs clean (stores out of
	// range are dropped, loads read 0 — the documented MiniC semantics).
	res = Run(p, Config{NArgs: 1, ArgLen: 1})
	if res.Stats.ErrorsFound != 0 {
		t.Fatalf("unexpected errors without CheckBounds: %v", res.Errors)
	}
}

func TestAssumeNarrows(t *testing.T) {
	p := MustCompile(`
void main() {
    byte c = argchar(1, 0);
    assume(c == 'x');
    if (c == 'x') {
        putchar('y');
    } else {
        putchar('n'); // unreachable under the assumption
    }
}
`)
	res := Run(p, Config{NArgs: 1, ArgLen: 1, CollectTests: true})
	if res.Stats.PathsCompleted != 1 {
		t.Fatalf("assume left %d paths, want 1", res.Stats.PathsCompleted)
	}
	if len(res.Tests) != 1 || string(res.Tests[0].Output) != "y" {
		t.Fatalf("tests = %+v", res.Tests)
	}
	if len(res.Tests[0].Args) != 1 || string(res.Tests[0].Args[0]) != "x" {
		t.Fatalf("model args %q, want [\"x\"]", res.Tests[0].Args)
	}
}

func TestContradictoryAssumeKillsPath(t *testing.T) {
	p := MustCompile(`
void main() {
    byte c = argchar(1, 0);
    assume(c == 'x');
    assume(c == 'y');
    putchar('?'); // unreachable
}
`)
	res := Run(p, Config{NArgs: 1, ArgLen: 1, CollectTests: true})
	if res.Stats.PathsCompleted != 0 {
		t.Fatalf("contradictory assumptions completed %d paths", res.Stats.PathsCompleted)
	}
}

func TestSymIntrinsics(t *testing.T) {
	p := MustCompile(`
void main() {
    int x = sym_int();
    byte b = sym_byte();
    bool f = sym_bool();
    if (x == 42 && b == 7 && f) {
        putchar('*');
    }
}
`)
	res := Run(p, Config{CollectTests: true})
	if !res.Completed {
		t.Fatal("did not complete")
	}
	star := false
	for _, tc := range res.Tests {
		if string(tc.Output) == "*" {
			star = true
		}
	}
	if !star {
		t.Fatal("no test case reaches the starred branch")
	}
}

func TestMakeSymbolicArray(t *testing.T) {
	p := MustCompile(`
void main() {
    byte buf[3];
    make_symbolic(buf);
    if (buf[0] == 'a' && buf[1] == 'b') {
        putchar('!');
    }
}
`)
	res := Run(p, Config{CollectTests: true})
	found := false
	for _, tc := range res.Tests {
		if string(tc.Output) == "!" {
			found = true
		}
	}
	if !found {
		t.Fatal("make_symbolic array did not produce the 'ab' path")
	}
}

// TestMergeFuncSummaries exercises the function-summary regime of §2.2: a
// branching helper's paths collapse at every return, so the caller sees one
// summarized state per call while multiplicity still covers every path.
func TestMergeFuncSummaries(t *testing.T) {
	src := `
int digit(byte c) {
    if (c < '0') { return -1; }
    if (c > '9') { return -1; }
    return toint(c - '0');
}
void main() {
    int a = digit(argchar(1, 0));
    int b = digit(argchar(2, 0));
    if (a >= 0 && b >= 0) {
        putchar(tobyte('0' + a + b));
    } else {
        putchar('?');
    }
}
`
	p := MustCompile(src)
	plain := Run(p, Config{NArgs: 2, ArgLen: 1, Merge: MergeNone})
	summ := Run(p, Config{NArgs: 2, ArgLen: 1, Merge: MergeFunc})
	if !plain.Completed || !summ.Completed {
		t.Fatal("exploration incomplete")
	}
	if summ.Stats.Merges == 0 {
		t.Fatal("no summary merges at function exits")
	}
	if summ.Stats.PathsMult.Uint64() < plain.Stats.PathsCompleted {
		t.Fatalf("summary multiplicity %s under-counts %d plain paths",
			summ.Stats.PathsMult, plain.Stats.PathsCompleted)
	}
	if summ.Stats.PathsCompleted >= plain.Stats.PathsCompleted {
		t.Fatalf("summaries did not reduce states: %d vs %d",
			summ.Stats.PathsCompleted, plain.Stats.PathsCompleted)
	}
}

// TestMergeFuncQCEGated: with QCE on, summaries become selective — a callee
// result that feeds a hot loop bound keeps its states separate.
func TestMergeFuncQCEGated(t *testing.T) {
	src := `
int width(byte c) {
    if (c == 'w') { return 3; }
    return 1;
}
void main() {
    int n = width(argchar(1, 0));
    for (int i = 0; i < n; i++) {
        putchar('x');
    }
    putchar('\n');
}
`
	p := MustCompile(src)
	all := Run(p, Config{NArgs: 1, ArgLen: 1, Merge: MergeFunc})
	gated := Run(p, Config{NArgs: 1, ArgLen: 1, Merge: MergeFunc, UseQCE: true,
		QCE: QCEParams{Alpha: 0.01, Beta: 0.8, Kappa: 10, Zeta: 1}})
	if !all.Completed || !gated.Completed {
		t.Fatal("exploration incomplete")
	}
	if all.Stats.Merges == 0 {
		t.Fatal("ungated summaries never merged")
	}
	// n is hot (it bounds the later loop): QCE must refuse this merge.
	if gated.Stats.Merges != 0 {
		t.Fatalf("QCE-gated summaries merged %d times on a hot loop bound",
			gated.Stats.Merges)
	}
}

// TestSleepAnecdote pins the paper's §5.4 case study: sleep's parse loops
// fork per character, but the accumulator `seconds` is used only once in
// the final validation, so QCE does not mark it hot and all parse states
// merge — avoiding the exponential growth in the number of arguments.
func TestSleepAnecdote(t *testing.T) {
	src := `
void main() {
    int seconds = 0;
    bool ok = argc() > 1;
    for (int arg = 1; arg < argc(); arg++) {
        int v = 0;
        bool any = false;
        for (int i = 0; argchar(arg, i) != 0; i++) {
            byte d = argchar(arg, i);
            if (d >= '0' && d <= '9') {
                v = v * 10 + toint(d - '0');
                any = true;
            } else {
                ok = false;
            }
        }
        if (!any) { ok = false; }
        seconds = seconds + v;
    }
    if (!ok) { putchar('?'); halt(1); }
    if (seconds > 86400) { putchar('!'); halt(1); }
    putchar('z');
    halt(0);
}
`
	p := MustCompile(src)
	plain := Run(p, Config{NArgs: 2, ArgLen: 2, Merge: MergeNone})
	merged := Run(p, Config{NArgs: 2, ArgLen: 2, Merge: MergeSSM, UseQCE: true})
	if !plain.Completed || !merged.Completed {
		t.Fatal("exploration incomplete")
	}
	// Plain exploration is exponential in the number of characters;
	// merging must collapse the parse states dramatically.
	if plain.Stats.PathsCompleted < 50 {
		t.Fatalf("plain explored only %d paths; expected exponential growth", plain.Stats.PathsCompleted)
	}
	if merged.Stats.PathsCompleted*5 > plain.Stats.PathsCompleted {
		t.Fatalf("merging did not collapse sleep: %d merged vs %d plain states",
			merged.Stats.PathsCompleted, plain.Stats.PathsCompleted)
	}
	if merged.Stats.Merges == 0 {
		t.Fatal("no merges on sleep")
	}
}
