package symx

// Differential and fuzz suites for the static dataflow analyses
// (internal/analysis): with the analyses enabled (the default) the engine
// prunes statically-decided branch sides, elides provably-in-bounds
// checks, slims merge selectors to live slots, and admits heap-contained
// callees to the summary cache — and none of it may be observable. Every
// test here runs the same exploration with DisableAnalysis on and off and
// requires identical censuses, errors, coverage, and canonical behavior;
// the fuzz arm additionally re-validates each pruned branch side against
// the solver (CrossCheckAnalysis panics on a satisfiable pruned side).

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// analysisPruneSrc has one statically-true branch (x is a byte, so
// x < 300 always holds), a counted loop whose stores are provably in
// bounds, and a constant-offset heap dereference — one witness per
// counter the analyses feed.
const analysisPruneSrc = `
void main() {
    int x = toint(argchar(1, 0));
    int buf[4];
    for (int i = 0; i < 4; i++) {
        buf[i] = x + i;
    }
    ptr h = alloc(2);
    h[0] = x;
    h[1] = h[0] + 1;
    if (x < 300) {
        putchar('y');
    } else {
        putchar('n');
    }
    int v = buf[x & 3] + h[1];
    putchar(tobyte(v & 255));
    halt(0);
}
`

// analysisHeapLiftSrc calls a heap-contained helper twice: the helper
// allocates, branches, and reads back only its own cells, so the effect
// analysis lifts the static heap gate. The first call site sees fresh
// allocation-site counters and is discharged from a summary; the second
// executes after the replayed allocation and must fall back to inlining
// (RejectHeapBusy), keeping recorded addresses canonical.
const analysisHeapLiftSrc = `
int fill(int a) {
    ptr h = alloc(4);
    h[0] = a;
    if (a > 9) {
        h[0] = 9;
    }
    h[1] = h[0] + 1;
    h[2] = h[1] + h[0];
    return h[2];
}

void main() {
    int x = toint(argchar(1, 0));
    int r = fill(x);
    int s = fill(x + 1);
    putchar(tobyte((r + s) & 255));
    halt(0);
}
`

// checkAnalysisParity runs cfg twice — analyses off, then on — and
// requires byte-equal observables: completion, the exact-path census,
// multiplicity, error counts, the coverage mask, and the canonical
// behavior of every generated input. Returns the analyses-on result so
// callers can assert on its counters.
func checkAnalysisParity(t *testing.T, p *Program, cfg Config, label string) *Result {
	t.Helper()
	cfg.CollectTests = true
	cfg.CanonicalTests = true
	if cfg.MaxTests == 0 {
		cfg.MaxTests = 1 << 20
	}
	if cfg.Merge != MergeNone {
		cfg.TrackExactPaths = true
	}
	off := cfg
	off.DisableAnalysis = true
	on := cfg
	on.DisableAnalysis = false

	roff := Run(p, off)
	ron := Run(p, on)
	if roff.ConfigErr != nil || ron.ConfigErr != nil {
		t.Fatalf("%s: config refused: off=%v on=%v", label, roff.ConfigErr, ron.ConfigErr)
	}
	if !roff.Completed || !ron.Completed {
		t.Fatalf("%s: incomplete exploration: off=%v on=%v", label, roff.Completed, ron.Completed)
	}
	if roff.Stats.PathsMult.Cmp(ron.Stats.PathsMult) != 0 {
		// Pruned sides are unsat, so they never contributed feasible
		// paths; slimmed selectors cover only dead slots. The feasible
		// path structure — and with it multiplicity — must be untouched.
		t.Fatalf("%s: multiplicity off=%s on=%s", label, roff.Stats.PathsMult, ron.Stats.PathsMult)
	}
	if cfg.Merge != MergeNone && roff.Stats.ExactPaths != ron.Stats.ExactPaths {
		t.Fatalf("%s: exact census off=%d on=%d", label, roff.Stats.ExactPaths, ron.Stats.ExactPaths)
	}
	if roff.Stats.ErrorsFound != ron.Stats.ErrorsFound {
		t.Fatalf("%s: errors off=%d on=%d", label, roff.Stats.ErrorsFound, ron.Stats.ErrorsFound)
	}
	if len(roff.CoverageMask) != len(ron.CoverageMask) {
		t.Fatalf("%s: coverage mask length off=%d on=%d", label, len(roff.CoverageMask), len(ron.CoverageMask))
	}
	for i := range roff.CoverageMask {
		if roff.CoverageMask[i] != ron.CoverageMask[i] {
			t.Fatalf("%s: coverage diverges at loc index %d: off=%v on=%v",
				label, i, roff.CoverageMask[i], ron.CoverageMask[i])
		}
	}
	boff, bon := behavior(t, roff), behavior(t, ron)
	if len(boff) != len(bon) {
		t.Fatalf("%s: %d canonical inputs with analyses off, %d on", label, len(boff), len(bon))
	}
	for id, want := range boff {
		if got, ok := bon[id]; !ok {
			t.Fatalf("%s: input %s missing with analyses on", label, id)
		} else if got != want {
			t.Fatalf("%s: input %s behavior off=%s on=%s", label, id, want, got)
		}
	}
	return ron
}

// TestAnalysisPruneAndElide: the fixture's statically-decided branch and
// provably-safe accesses actually move the counters, with bounds checking
// on so the elisions replace real query pairs — and the observables stay
// pinned.
func TestAnalysisPruneAndElide(t *testing.T) {
	p, err := Compile(analysisPruneSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, workers := range []int{1, 4} {
		label := fmt.Sprintf("w%d", workers)
		res := checkAnalysisParity(t, p, Config{
			NArgs: 1, ArgLen: 1,
			Merge: MergeSSM, UseQCE: true,
			CheckBounds: true,
			Workers:     workers,
			MaxTime:     30 * time.Second,
		}, label)
		if res.Stats.PrunedStatic == 0 {
			t.Errorf("%s: no branch side was statically pruned", label)
		}
		if res.Stats.BoundsElided == 0 {
			t.Errorf("%s: no bounds/heap check was elided", label)
		}
	}

	// With the analyses disabled the counters must stay zero.
	res := Run(p, Config{
		NArgs: 1, ArgLen: 1,
		CheckBounds:     true,
		DisableAnalysis: true,
	})
	if res.Stats.PrunedStatic != 0 || res.Stats.BoundsElided != 0 {
		t.Errorf("disabled analyses still counted: pruned=%d elided=%d",
			res.Stats.PrunedStatic, res.Stats.BoundsElided)
	}
}

// TestAnalysisParityMatrix crosses the parity check over the merging
// regimes, worker counts, and the summary-heavy fixtures.
func TestAnalysisParityMatrix(t *testing.T) {
	fixtures := []struct {
		name string
		src  string
	}{
		{"prune", analysisPruneSrc},
		{"calls", summaryCallSrc},
		{"heaplift", analysisHeapLiftSrc},
	}
	regimes := []struct {
		name  string
		merge MergeMode
		qce   bool
	}{
		{"none", MergeNone, false},
		{"ssm+qce", MergeSSM, true},
		{"dsm+qce", MergeDSM, true},
	}
	for _, fx := range fixtures {
		p, err := Compile(fx.src)
		if err != nil {
			t.Fatalf("%s: compile: %v", fx.name, err)
		}
		for _, reg := range regimes {
			for _, workers := range []int{1, 8} {
				label := fmt.Sprintf("%s/%s/w%d", fx.name, reg.name, workers)
				checkAnalysisParity(t, p, Config{
					NArgs: 1, ArgLen: 2,
					Merge:   reg.merge,
					UseQCE:  reg.qce,
					Workers: workers,
					MaxTime: 30 * time.Second,
				}, label)
			}
		}
	}
}

// TestAnalysisHeapSummaryLift: the heap-contained helper is admitted to
// the summary cache (the PR-8 gate rejected any heap-touching closure),
// discharged at its first call site, and the whole run stays behaviorally
// identical to both the analyses-off and the summaries-off explorations.
func TestAnalysisHeapSummaryLift(t *testing.T) {
	p, err := Compile(analysisHeapLiftSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := Config{
		NArgs: 1, ArgLen: 1,
		Summaries: true,
		MaxTime:   30 * time.Second,
	}
	ron := checkAnalysisParity(t, p, cfg, "heaplift")
	if ron.Stats.SummaryHeapLifted == 0 {
		t.Error("no heap-contained call site was discharged from a summary")
	}
	if ron.Stats.SummaryHits == 0 {
		t.Error("no summary hit at all")
	}

	// With the analyses off, the strict PR-8 gate stands: the helper
	// allocates, so nothing may be lifted (or even recorded for it).
	roff := Run(p, Config{
		NArgs: 1, ArgLen: 1,
		Summaries:       true,
		DisableAnalysis: true,
	})
	if roff.Stats.SummaryHeapLifted != 0 {
		t.Errorf("strict heap gate lifted %d sites with analyses off", roff.Stats.SummaryHeapLifted)
	}

	// And against the summaries-off baseline the summary+lift run must
	// agree behaviorally too (checkSummaryParity toggles Summaries).
	checkSummaryParity(t, p, cfg, "heaplift-vs-inline")
}

// TestFuzzAnalysisCrossCheck: random programs under CrossCheckAnalysis,
// which re-validates every statically pruned branch side against the
// solver (pruned ⇒ unsat) and panics on disagreement — plus the full
// off/on parity check per program. Heap-flavored programs keep the
// pointer-origin elisions honest.
func TestFuzzAnalysisCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(20260808))
	gen := &progGen{rng: rng}
	checked, pruned, elided := 0, uint64(0), uint64(0)
	for iter := 0; iter < 50; iter++ {
		src := gen.generate(6 + rng.Intn(6))
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("iter %d: generated program does not compile: %v\n%s", iter, err, src)
		}
		base := Config{
			NArgs: 1, ArgLen: 2,
			Merge: MergeSSM, UseQCE: true,
			CheckBounds: true,
			MaxTime:     10 * time.Second,
			MaxTests:    4096,
		}
		probe := base
		probe.DisableAnalysis = true
		probe.CollectTests = true
		if !Run(p, probe).Completed {
			continue // too big for the fuzz budget; skip
		}
		checked++

		cross := base
		cross.CrossCheckAnalysis = true
		res := Run(p, cross)
		if !res.Completed {
			t.Fatalf("iter %d: cross-checked run did not complete\n%s", iter, src)
		}
		pruned += res.Stats.PrunedStatic
		elided += res.Stats.BoundsElided

		checkAnalysisParity(t, p, base, fmt.Sprintf("iter%d", iter))
	}
	if checked < 20 {
		t.Fatalf("only %d/50 generated programs fit the fuzz budget", checked)
	}
	if pruned == 0 && elided == 0 {
		t.Error("fuzz corpus never exercised a static prune or elision")
	}
	t.Logf("checked %d programs: %d branch sides pruned, %d checks elided", checked, pruned, elided)
}
